bench/programs.ml: Array Char Expr Parser Pattern String Symbol Tensor Wolf_compiler Wolf_runtime Wolf_wexpr
