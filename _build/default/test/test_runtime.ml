(* The runtime layer (S19): boxing/unboxing at the compiled-function
   boundary, the boxed primitive dispatch, checked arithmetic, and the
   deterministic PRNG shared by every execution path. *)

open Wolf_wexpr
open Wolf_runtime
open Wolf_base

let parse = Parser.parse
let expr = Alcotest.testable (Fmt.of_to_string Expr.to_string) Expr.equal

let test_boxing_roundtrip () =
  let cases =
    [ ("int", parse "42"); ("real", parse "2.5"); ("string", parse "\"hi\"");
      ("true", parse "True"); ("false", parse "False"); ("null", parse "Null");
      ("complex", parse "Complex[1.0, 2.0]"); ("packed ints", parse "{1, 2, 3}");
      ("packed reals", parse "{1.5, 2.5}"); ("matrix", parse "{{1, 2}, {3, 4}}");
      ("symbolic", parse "f[x, 1]") ]
  in
  List.iter
    (fun (name, e) ->
       Alcotest.check expr name e (Rtval.to_expr (Rtval.of_expr e)))
    cases

let test_unboxing_shapes () =
  Alcotest.(check string) "int" "Integer64" (Rtval.type_name (Rtval.of_expr (parse "5")));
  Alcotest.(check string) "real" "Real64" (Rtval.type_name (Rtval.of_expr (parse "5.0")));
  Alcotest.(check string) "bool" "Boolean" (Rtval.type_name (Rtval.of_expr (parse "True")));
  Alcotest.(check string) "complex" "ComplexReal64"
    (Rtval.type_name (Rtval.of_expr (parse "Complex[1.0, 0.5]")));
  Alcotest.(check string) "packed" "PackedArray[Integer64, 1]"
    (Rtval.type_name (Rtval.of_expr (parse "{1, 2}")));
  Alcotest.(check string) "heterogeneous stays Expression" "Expression"
    (Rtval.type_name (Rtval.of_expr (parse "{1, \"two\"}")))

let test_accessor_mismatches () =
  let is_rt = function Errors.Runtime_error _ -> true | _ -> false in
  let expect_raise name f =
    match f () with
    | _ -> Alcotest.failf "%s should raise" name
    | exception e ->
      Alcotest.(check bool) name true (is_rt e)
  in
  expect_raise "as_int of real" (fun () -> Rtval.as_int (Rtval.Real 1.0));
  expect_raise "as_str of int" (fun () -> Rtval.as_str (Rtval.Int 1));
  expect_raise "as_tensor of bool" (fun () -> Rtval.as_tensor (Rtval.Bool true));
  Alcotest.(check (float 0.0)) "as_real coerces int" 3.0 (Rtval.as_real (Rtval.Int 3))

let test_prims_dispatch () =
  let i n = Rtval.Int n and r x = Rtval.Real x in
  let cases =
    [ ("checked_binary_plus", [| i 2; i 3 |], i 5);
      ("binary_plus", [| r 1.5; r 2.0 |], r 3.5);
      ("binary_plus", [| i 1; r 2.5 |], r 3.5);
      ("binary_less", [| i 1; i 2 |], Rtval.Bool true);
      ("binary_equal", [| Rtval.Str "a"; Rtval.Str "a" |], Rtval.Bool true);
      ("unary_not", [| Rtval.Bool false |], Rtval.Bool true);
      ("binary_min", [| r 1.5; i 2 |], r 1.5);
      ("unary_floor", [| r 2.9 |], i 2);
      ("unary_round", [| r 2.5 |], i 2);    (* banker's rounding *)
      ("unary_round", [| r 3.5 |], i 4);
      ("string_length", [| Rtval.Str "abc" |], i 3);
      ("string_byte", [| Rtval.Str "A"; i 1 |], i 65);
      ("complex_abs", [| Rtval.Complex (3.0, 4.0) |], r 5.0);
      ("unary_boole", [| Rtval.Bool true |], i 1) ]
  in
  List.iter
    (fun (base, args, expected) ->
       Alcotest.(check bool)
         (Printf.sprintf "%s dispatch" base)
         true
         (Rtval.equal expected (Prims.apply ~base args)))
    cases;
  (* unknown primitive is a programming error, not a runtime failure *)
  (match Prims.apply ~base:"no_such_primitive" [||] with
   | _ -> Alcotest.fail "unknown primitive accepted"
   | exception Invalid_argument _ -> ());
  (* numerical failures surface as Runtime_error for the soft fallback *)
  match Prims.apply ~base:"checked_binary_plus" [| Rtval.Int max_int; Rtval.Int 1 |] with
  | _ -> Alcotest.fail "overflow not detected"
  | exception Errors.Runtime_error Errors.Integer_overflow -> ()
  | exception e -> Alcotest.failf "wrong failure: %s" (Printexc.to_string e)

let test_checked_arithmetic_edges () =
  Alcotest.(check int) "add at boundary" max_int (Checked.add (max_int - 1) 1);
  (match Checked.neg min_int with
   | _ -> Alcotest.fail "neg min_int"
   | exception Errors.Runtime_error Errors.Integer_overflow -> ()
   | exception _ -> Alcotest.fail "wrong exn");
  (match Checked.quotient 1 0 with
   | _ -> Alcotest.fail "div by zero"
   | exception Errors.Runtime_error Errors.Division_by_zero -> ()
   | exception _ -> Alcotest.fail "wrong exn");
  Alcotest.(check int) "floored quotient" (-4) (Checked.quotient (-7) 2);
  Alcotest.(check int) "mod sign of divisor" 1 (Checked.modulo (-7) 2);
  Alcotest.(check int) "banker 0.5" 0 (Checked.round_half_even 0.5);
  Alcotest.(check int) "banker 1.5" 2 (Checked.round_half_even 1.5);
  Alcotest.(check int) "banker -2.5" (-2) (Checked.round_half_even (-2.5))

let prop_checked_matches_int =
  QCheck2.Test.make ~name:"checked ops = int ops in range" ~count:500
    QCheck2.Gen.(pair (int_range (-100000) 100000) (int_range (-100000) 100000))
    (fun (a, b) ->
       Checked.add a b = a + b
       && Checked.sub a b = a - b
       && Checked.mul a b = a * b)

let test_rand_determinism () =
  Rand.seed 123;
  let a = Array.init 16 (fun _ -> Rand.uniform ()) in
  Rand.seed 123;
  let b = Array.init 16 (fun _ -> Rand.uniform ()) in
  Alcotest.(check bool) "same seed, same stream" true (a = b);
  Rand.seed 124;
  let c = Array.init 16 (fun _ -> Rand.uniform ()) in
  Alcotest.(check bool) "different seed differs" false (a = c);
  Array.iter
    (fun x -> Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0))
    a;
  Rand.seed 9;
  for _ = 1 to 100 do
    let v = Rand.int_range 3 7 in
    Alcotest.(check bool) "int_range bounds" true (v >= 3 && v <= 7)
  done

let test_hooks_default () =
  (* the hooks module must not silently evaluate without a kernel; Session
     installs the real evaluator, which run-of-the-mill tests rely on *)
  Wolfram.init ();
  Alcotest.check expr "hook evaluates" (Expr.Int 3)
    (Hooks.eval (parse "1 + 2"))

let tests =
  [ Alcotest.test_case "boxing roundtrip" `Quick test_boxing_roundtrip;
    Alcotest.test_case "unboxing shapes" `Quick test_unboxing_shapes;
    Alcotest.test_case "accessor mismatches" `Quick test_accessor_mismatches;
    Alcotest.test_case "primitive dispatch" `Quick test_prims_dispatch;
    Alcotest.test_case "checked arithmetic edges" `Quick test_checked_arithmetic_edges;
    Alcotest.test_case "PRNG determinism" `Quick test_rand_determinism;
    Alcotest.test_case "kernel hook" `Quick test_hooks_default;
    QCheck_alcotest.to_alcotest prop_checked_matches_int ]
