(* Arbitrary-precision integers (S1): unit cases at the machine-word
   boundary plus properties checked against native int arithmetic. *)

open Wolf_base

let b = Bignum.of_int
let bs = Bignum.of_string
let check_str msg expected n = Alcotest.(check string) msg expected (Bignum.to_string n)

let test_of_int_roundtrip () =
  List.iter
    (fun i ->
       Alcotest.(check (option int)) (string_of_int i) (Some i)
         (Bignum.to_int_opt (b i)))
    [ 0; 1; -1; 42; -42; 999_999_999; 1_000_000_000; -1_000_000_001;
      max_int; min_int; max_int - 1; min_int + 1 ]

let test_to_string () =
  check_str "zero" "0" Bignum.zero;
  check_str "small" "12345" (b 12345);
  check_str "negative" "-987654321" (b (-987654321));
  check_str "max_int" (string_of_int max_int) (b max_int);
  check_str "min_int" (string_of_int min_int) (b min_int)

let test_of_string () =
  check_str "roundtrip" "123456789012345678901234567890"
    (bs "123456789012345678901234567890");
  check_str "negative big" "-123456789012345678901234567890"
    (bs "-123456789012345678901234567890");
  check_str "leading +" "17" (bs "+17");
  Alcotest.check_raises "empty" (Invalid_argument "Bignum.of_string: empty")
    (fun () -> ignore (bs ""));
  Alcotest.check_raises "garbage" (Invalid_argument "Bignum.of_string: non-digit")
    (fun () -> ignore (bs "12a3"))

let test_add_carry () =
  check_str "carry chain" "1000000000000000000"
    (Bignum.add (b 999_999_999_999_999_999) (b 1));
  (* OCaml ints are 63-bit: max_int = 2^62 - 1 *)
  check_str "overflow max_int" "9223372036854775806"
    (Bignum.add (b max_int) (b max_int));
  check_str "min_int doubles" "-9223372036854775808"
    (Bignum.add (b min_int) (b min_int))

let test_sub_signs () =
  check_str "a-b positive" "1" (Bignum.sub (b 10) (b 9));
  check_str "a-b negative" "-1" (Bignum.sub (b 9) (b 10));
  check_str "cross zero" "-20" (Bignum.sub (b (-10)) (b 10));
  Alcotest.(check bool) "x - x = 0" true
    (Bignum.is_zero (Bignum.sub (bs "123456789123456789123") (bs "123456789123456789123")))

let test_mul () =
  check_str "square of max_int" "21267647932558653957237540927630737409"
    (Bignum.mul (b max_int) (b max_int));
  check_str "sign" "-6" (Bignum.mul (b 2) (b (-3)));
  check_str "zero" "0" (Bignum.mul (b 0) (bs "999999999999999999999"))

let test_divmod () =
  let q, r = Bignum.divmod (bs "1000000000000000000000") (b 7) in
  check_str "quot" "142857142857142857142" q;
  check_str "rem" "6" r;
  let q, r = Bignum.divmod (b (-100)) (b 7) in
  check_str "neg quot" "-14" q;
  check_str "neg rem (sign of dividend)" "-2" r;
  let q, r = Bignum.divmod (bs "123456789012345678901234567890") (bs "9876543210987654321") in
  check_str "multi-limb quot" "12499999886" q;
  check_str "multi-limb rem" "925925941327160484" r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bignum.divmod (b 1) Bignum.zero))

let test_pow () =
  check_str "2^100" "1267650600228229401496703205376" (Bignum.pow (b 2) 100);
  check_str "(-3)^3" "-27" (Bignum.pow (b (-3)) 3);
  check_str "x^0" "1" (Bignum.pow (bs "99999999999999") 0);
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Bignum.pow: negative exponent")
    (fun () -> ignore (Bignum.pow (b 2) (-1)))

let test_compare () =
  Alcotest.(check int) "eq" 0 (Bignum.compare (b 5) (b 5));
  Alcotest.(check bool) "lt" true (Bignum.compare (b (-5)) (b 5) < 0);
  Alcotest.(check bool) "big vs small" true
    (Bignum.compare (bs "99999999999999999999") (b max_int) > 0);
  Alcotest.(check bool) "negative big smallest" true
    (Bignum.compare (bs "-99999999999999999999") (b min_int) < 0)

let test_to_int_opt_bounds () =
  Alcotest.(check (option int)) "fits" (Some max_int)
    (Bignum.to_int_opt (bs (string_of_int max_int)));
  Alcotest.(check (option int)) "one above max_int" None
    (Bignum.to_int_opt (Bignum.add (b max_int) (b 1)));
  Alcotest.(check (option int)) "min_int exact" (Some min_int)
    (Bignum.to_int_opt (bs (string_of_int min_int)));
  Alcotest.(check (option int)) "one below min_int" None
    (Bignum.to_int_opt (Bignum.sub (b min_int) (b 1)))

(* properties vs native arithmetic on small operands *)
let small = QCheck2.Gen.int_range (-1_000_000_000) 1_000_000_000

let prop_add =
  QCheck2.Test.make ~name:"bignum add agrees with int" ~count:500
    QCheck2.Gen.(pair small small)
    (fun (x, y) -> Bignum.to_int_opt (Bignum.add (b x) (b y)) = Some (x + y))

let prop_mul =
  QCheck2.Test.make ~name:"bignum mul agrees with int" ~count:500
    QCheck2.Gen.(pair small small)
    (fun (x, y) -> Bignum.to_int_opt (Bignum.mul (b x) (b y)) = Some (x * y))

let prop_divmod =
  QCheck2.Test.make ~name:"divmod is truncated division" ~count:500
    QCheck2.Gen.(pair small small)
    (fun (x, y) ->
       y = 0
       || (let q, r = Bignum.divmod (b x) (b y) in
           Bignum.to_int_opt q = Some (x / y) && Bignum.to_int_opt r = Some (x mod y)))

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"of_string/to_string roundtrip" ~count:300
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 9))
    (fun digits ->
       let s = String.concat "" (List.map string_of_int digits) in
       let canonical = Bignum.to_string (Bignum.of_string s) in
       (* canonical form strips leading zeros *)
       Bignum.to_string (Bignum.of_string canonical) = canonical)

let prop_add_assoc =
  QCheck2.Test.make ~name:"addition associativity (multi-limb)" ~count:300
    QCheck2.Gen.(triple (int_range 0 max_int) (int_range 0 max_int) (int_range 0 max_int))
    (fun (x, y, z) ->
       Bignum.equal
         (Bignum.add (b x) (Bignum.add (b y) (b z)))
         (Bignum.add (Bignum.add (b x) (b y)) (b z)))

let tests =
  [ Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "of_string" `Quick test_of_string;
    Alcotest.test_case "add carries" `Quick test_add_carry;
    Alcotest.test_case "sub signs" `Quick test_sub_signs;
    Alcotest.test_case "mul" `Quick test_mul;
    Alcotest.test_case "divmod" `Quick test_divmod;
    Alcotest.test_case "pow" `Quick test_pow;
    Alcotest.test_case "compare" `Quick test_compare;
    Alcotest.test_case "to_int_opt bounds" `Quick test_to_int_opt_bounds;
    QCheck_alcotest.to_alcotest prop_add;
    QCheck_alcotest.to_alcotest prop_mul;
    QCheck_alcotest.to_alcotest prop_divmod;
    QCheck_alcotest.to_alcotest prop_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_add_assoc ]
