test/test_features.ml: Alcotest Bench_support List Printf String
