test/test_stdlib.ml: Alcotest Expr Fmt Form List Parser Pipeline Printf QCheck2 QCheck_alcotest String Wir Wolf_base Wolf_compiler Wolf_wexpr Wolfram
