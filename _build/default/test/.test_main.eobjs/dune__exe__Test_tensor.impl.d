test/test_tensor.ml: Alcotest Array Errors Expr Float List Parser QCheck2 QCheck_alcotest Tensor Wolf_base Wolf_runtime Wolf_wexpr
