test/test_wvm.ml: Alcotest Array Expr Fmt List Parser Printf QCheck2 QCheck_alcotest String Wolf_backends Wolf_kernel Wolf_wexpr Wolfram
