test/test_bignum.ml: Alcotest Bignum List QCheck2 QCheck_alcotest String Wolf_base
