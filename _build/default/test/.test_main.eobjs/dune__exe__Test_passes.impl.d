test/test_passes.ml: Alcotest Analysis Filename List Options Parser Pipeline Printf String Type_env Types Wir Wir_lint Wolf_compiler Wolf_wexpr
