test/test_wexpr.ml: Alcotest Array Expr Float Fmt Form List Parser QCheck2 QCheck_alcotest Wolf_base Wolf_wexpr
