test/test_export.ml: Alcotest Array Filename Lazy Parser Pipeline Printf Rtval String Sys Unix Wolf_backends Wolf_compiler Wolf_runtime Wolf_wexpr
