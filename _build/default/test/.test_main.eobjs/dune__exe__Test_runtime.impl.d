test/test_runtime.ml: Alcotest Array Checked Errors Expr Fmt Hooks List Parser Prims Printexc Printf QCheck2 QCheck_alcotest Rand Rtval Wolf_base Wolf_runtime Wolf_wexpr Wolfram
