test/test_appendix.ml: Alcotest Filename List Options Pipeline String Sys Wir Wolf_backends Wolf_compiler Wolf_wexpr Wolfram
