test/test_pattern.ml: Alcotest Expr Fmt List Option Parser Pattern QCheck2 QCheck_alcotest Symbol Test_wexpr Wolf_kernel Wolf_wexpr
