test/test_macro.ml: Alcotest Array Binding Expr Fmt List Macro Option Parser Pattern String Symbol Wolf_base Wolf_compiler Wolf_wexpr
