test/test_kernel.ml: Alcotest Expr Form List Parser Printexc Wolf_base Wolf_kernel Wolf_runtime Wolf_wexpr
