test/test_types.ml: Alcotest Array List Option Parser Pipeline Result String Type_class Types Unify Wir Wir_print Wolf_base Wolf_compiler Wolf_wexpr
