(* The legacy bytecode compiler and its VM (S23, paper §2.2): datatype
   restrictions, Real-by-default typing, interpreter escapes, copy-on-read,
   the serialised dump, and per-opcode dispatch correctness. *)

open Wolf_wexpr
module Wvm = Wolf_backends.Wvm

let parse = Parser.parse
let expr = Alcotest.testable (Fmt.of_to_string Expr.to_string) Expr.equal

let run src args =
  Wolfram.init ();
  Wvm.call (Wvm.compile (parse src)) (Array.of_list args)

let check name src args expected =
  Alcotest.check expr name (parse expected) (run src args)

let test_typed_arguments () =
  check "integer typed" {|Function[{Typed[n, "MachineInteger"]}, n + 1]|}
    [ Expr.Int 41 ] "42";
  check "real typed" {|Function[{Typed[x, "Real64"]}, x*2.0]|} [ Expr.Real 1.5 ] "3.0";
  check "boolean typed" {|Function[{Typed[b, "Boolean"]}, If[b, 1, 0]]|}
    [ Expr.true_ ] "1";
  check "tensor typed"
    {|Function[{Typed[v, "PackedArray"["Integer64", 1]]}, Total[v]]|}
    [ parse "{1, 2, 3}" ] "6"

let test_untyped_assumes_real () =
  (* §2.2: "The Compile inputs can be typed, otherwise they are assumed to
     be Real" *)
  check "int arg becomes real" "Function[{x}, x + x]" [ Expr.Int 2 ] "4.0"

let test_ops () =
  let cases =
    [ ("plus", "a + b", [ Expr.Int 3; Expr.Int 4 ], "7");
      ("subtract", "a - b", [ Expr.Int 3; Expr.Int 4 ], "-1");
      ("times", "a*b", [ Expr.Int 6; Expr.Int 7 ], "42");
      ("mod", "Mod[a, b]", [ Expr.Int (-7); Expr.Int 3 ], "2");
      ("quotient", "Quotient[a, b]", [ Expr.Int (-7); Expr.Int 2 ], "-4");
      ("power", "a^b", [ Expr.Int 2; Expr.Int 10 ], "1024");
      ("less", "If[a < b, 1, 0]", [ Expr.Int 1; Expr.Int 2 ], "1");
      ("equal", "If[a == b, 1, 0]", [ Expr.Int 5; Expr.Int 5 ], "1");
      ("min", "Min[a, b]", [ Expr.Int 5; Expr.Int 2 ], "2");
      ("max", "Max[a, b]", [ Expr.Int 5; Expr.Int 2 ], "5");
      ("bitand", "BitAnd[a, b]", [ Expr.Int 12; Expr.Int 10 ], "8");
      ("bitxor", "BitXor[a, b]", [ Expr.Int 12; Expr.Int 10 ], "6") ]
  in
  List.iter
    (fun (name, body, args, expected) ->
       check name
         (Printf.sprintf
            {|Function[{Typed[a, "MachineInteger"], Typed[b, "MachineInteger"]}, %s]|}
            body)
         args expected)
    cases;
  check "real math"
    {|Function[{Typed[x, "Real64"]}, Sin[x]*Sin[x] + Cos[x]*Cos[x]]|}
    [ Expr.Real 0.7 ] "1.0"

let test_complex () =
  check "complex arithmetic"
    {|Function[{Typed[z, "Complex"]}, Abs[z*z]]|}
    [ parse "Complex[3.0, 4.0]" ] "25.0"

let test_loops_and_parts () =
  check "loop sum"
    {|Function[{Typed[n, "MachineInteger"]},
       Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]|}
    [ Expr.Int 10 ] "55";
  check "matrix part"
    {|Function[{Typed[m, "PackedArray"["Real64", 2]]}, m[[2, 2]]*m[[1, 1]]]|}
    [ parse "{{2.0, 0.0}, {0.0, 8.0}}" ] "16.0";
  check "part update"
    {|Function[{Typed[v, "PackedArray"["Integer64", 1]]},
       Module[{w = v}, w[[1]] = 99; w[[1]] + v[[1]]]]|}
    [ parse "{1, 2}" ] "100"

let test_copy_on_read () =
  (* w = v copies, so mutating w leaves v intact *)
  check "register copy isolates"
    {|Function[{Typed[v, "PackedArray"["Integer64", 1]]},
       Module[{w = v, before = 0}, before = v[[1]]; w[[1]] = 50; before*100 + v[[1]]]]|}
    [ parse "{7, 8}" ] "707"

let test_escape_counts () =
  (* one interpreter escape per unsupported call, resolved at runtime *)
  Wolfram.init ();
  ignore (Wolfram.interpret "wvmHelper[x_] := 10*x");
  let cf =
    Wvm.compile
      (parse {|Function[{Typed[n, "MachineInteger"]}, wvmHelper[n] + wvmHelper[n + 1]]|})
  in
  Alcotest.check expr "escapes evaluate" (Expr.Int 70)
    (Wvm.call cf [| Expr.Int 3 |]);
  let dump = Wvm.dump cf in
  let count needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i acc =
      if i + nl > hl then acc
      else go (i + 1) (if String.sub hay i nl = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "two EvalExpr instructions" 2 (count "EvalExpr" dump)

let test_dump_shape () =
  let cf =
    Wvm.compile (parse {|Function[{Typed[x, "Real64"]}, Sin[x] + x]|})
  in
  let dump = Wvm.dump cf in
  let contains needle =
    let nl = String.length needle and hl = String.length dump in
    let rec go i = i + nl <= hl && (String.sub dump i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun n -> Alcotest.(check bool) n true (contains n))
    [ "CompiledFunction[{11, 12, 5468}"; "{_Real}"; "LoadArg"; "Sin Op"; "Plus Op";
      "Return"; "Evaluate]" ];
  Alcotest.(check bool) "instruction count sane" true (Wvm.instruction_count cf >= 4)

let test_if_without_else () =
  check "if statement"
    {|Function[{Typed[n, "MachineInteger"]},
       Module[{x = 0}, If[n > 0, x = 1]; x]]|}
    [ Expr.Int 5 ] "1"

let test_overflow_reverts () =
  Wolfram.init ();
  let w = Wvm.compile (parse {|Function[{Typed[x, "MachineInteger"]}, x*x + 1]|}) in
  match Wvm.call w [| Expr.Int 3037000500 |] with
  | Expr.Big _ -> ()
  | v -> Alcotest.failf "overflow did not revert: %s" (Expr.to_string v)

(* differential property on a small arithmetic grammar: WVM = interpreter
   for overflow-free real computations *)
let prop_wvm_differential =
  QCheck2.Test.make ~name:"WVM real programs match interpreter" ~count:100
    QCheck2.Gen.(pair (int_range 0 2) (float_range (-4.0) 4.0))
    (fun (shape, x) ->
       Wolfram.init ();
       let body =
         match shape with
         | 0 -> "x*x + 2.0*x + 1.0"
         | 1 -> "Sin[x]*Cos[x] + x/2.0"
         | _ -> "Max[x, 0.0] - Min[x, 0.0]"
       in
       let src = Printf.sprintf {|Function[{Typed[x, "Real64"]}, %s]|} body in
       let fexpr = parse src in
       let reference = Wolf_kernel.Session.eval (Expr.Normal (fexpr, [| Expr.Real x |])) in
       let got = Wvm.call (Wvm.compile fexpr) [| Expr.Real x |] in
       Expr.equal reference got)

let tests =
  [ Alcotest.test_case "typed arguments" `Quick test_typed_arguments;
    Alcotest.test_case "untyped assumes Real (§2.2)" `Quick test_untyped_assumes_real;
    Alcotest.test_case "opcode dispatch" `Quick test_ops;
    Alcotest.test_case "complex numbers" `Quick test_complex;
    Alcotest.test_case "loops and parts" `Quick test_loops_and_parts;
    Alcotest.test_case "copy-on-read isolation" `Quick test_copy_on_read;
    Alcotest.test_case "interpreter escapes" `Quick test_escape_counts;
    Alcotest.test_case "serialised dump" `Quick test_dump_shape;
    Alcotest.test_case "If without else" `Quick test_if_without_else;
    Alcotest.test_case "overflow reverts (F2)" `Quick test_overflow_reverts;
    QCheck_alcotest.to_alcotest prop_wvm_differential ]
