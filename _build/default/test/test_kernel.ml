(* The interpreter substrate (S7): evaluation semantics the compiler must
   integrate with — infinite evaluation, scoping, attributes, mutability,
   numeric promotion, aborts, and the builtin library. *)

open Wolf_wexpr
module K = Wolf_kernel

let run src =
  K.Session.init ();
  Form.input_form (K.Session.run src)

let check name expected src = Alcotest.(check string) name expected (run src)

(* every case is (description, source, expected InputForm) *)
let eval_cases group cases =
  Alcotest.test_case group `Quick (fun () ->
      K.Session.reset ();
      List.iter (fun (name, src, expected) -> check name expected src) cases)

let arithmetic =
  eval_cases "arithmetic"
    [ ("add", "1 + 2", "3");
      ("mixed promotes", "1 + 2.5", "3.5");
      ("nary", "1 + 2 + 3 + 4", "10");
      ("times", "6*7", "42");
      ("machine overflow promotes", "2^62 + 2^62", "9223372036854775808");
      ("big times", "2^100", "1267650600228229401496703205376");
      ("negative power", "2^-1", "0.5");
      ("exact division", "10/2", "5");
      ("inexact division becomes real", "7/2", "3.5");
      ("subtract", "10 - 3 - 4", "3");
      ("unary minus", "-(3 + 4)", "-7");
      ("mod sign follows divisor", "Mod[-7, 3]", "2");
      ("quotient floors", "Quotient[-7, 2]", "-4");
      ("abs", "Abs[-9]", "9");
      ("abs real", "Abs[-2.5]", "2.5");
      ("min flattens lists", "Min[{3, 1, 2}]", "1");
      ("max", "Max[5, 2, 9]", "9");
      ("floor", "Floor[2.7]", "2");
      ("ceiling", "Ceiling[2.1]", "3");
      ("round", "Round[2.5]", "2");
      ("sqrt perfect", "Sqrt[49]", "7");
      ("sqrt real", "Sqrt[2.0] > 1.41 && Sqrt[2.0] < 1.42", "True");
      ("bitand", "BitAnd[12, 10]", "8");
      ("bitxor", "BitXor[12, 10]", "6");
      ("shifts", "BitShiftLeft[1, 10]", "1024");
      ("boole", "Boole[3 > 2]", "1");
      ("evenq", "EvenQ[4]", "True");
      ("oddq big", "OddQ[2^100 + 1]", "True") ]

let comparisons =
  eval_cases "comparisons and logic"
    [ ("less", "1 < 2", "True");
      ("chain true", "1 < 2 < 3", "True");
      ("chain false", "1 < 3 < 2", "False");
      ("mixed int real", "1 < 1.5", "True");
      ("equal strings", "\"a\" == \"a\"", "True");
      ("unequal", "3 != 4", "True");
      ("symbolic stays", "x1 < y1", "x1 < y1");
      ("and shortcircuit", "False && (1/0 == 1)", "False");
      ("or shortcircuit", "True || (1/0 == 1)", "True");
      ("not", "!True", "False");
      ("sameq structural", "f[x1] === f[x1]", "True");
      ("sameq int real differ", "2 === 2.0", "False") ]

let infinite_evaluation =
  eval_cases "infinite evaluation"
    [ ("chained ownvalues", "y2 = x2; x2 = 1; y2", "1");
      ("fixed point reached", "z2 = z2; z2", "z2");
      ("deep chain", "a3 = b3; b3 = c3; c3 = 42; a3", "42") ]

let test_infinite_loop_hits_limit () =
  K.Session.reset ();
  match K.Session.run "xx = xx + 1; xx" with
  | exception Wolf_base.Errors.Eval_error _ -> ()
  | v -> Alcotest.failf "expected recursion limit, got %s" (Form.input_form v)

let scoping =
  eval_cases "scoping"
    [ ("module basic", "Module[{a = 1, b = 2}, a + b]", "3");
      ("module shadows nested", "Module[{a = 1, b = 1}, a + b + Module[{a = 3}, a]]", "5");
      ("module isolates globals", "g5 = 10; Module[{g5 = 1}, g5]; g5", "10");
      ("block dynamic scope", "v5 = 1; f5[] := v5; Block[{v5 = 99}, f5[]]", "99");
      ("block restores", "w5 = 1; Block[{w5 = 2}, Null]; w5", "1");
      ("with substitutes", "With[{c5 = 4}, c5*c5]", "16");
      ("module sequential inits", "Module[{p = 3, q = 0}, q = p + 1; {p, q}]", "{3, 4}") ]

let functions =
  eval_cases "functions and rewriting"
    [ ("pure slot", "(#^2 &)[5]", "25");
      ("pure named", "Function[{u}, u + 1][41]", "42");
      ("two slots", "(#1 + #2 &)[3, 4]", "7");
      ("nested pure isolated", "(# + (#&)[10] &)[1]", "11");
      ("downvalue", "sq6[n_] := n*n; sq6[9]", "81");
      ("literal rule first", "f6[0] = 99; f6[n_] := n; {f6[0], f6[5]}", "{99, 5}");
      ("pattern head restriction", "g6[n_Integer] := 1; g6[n_Real] := 2; {g6[1], g6[1.0]}",
       "{1, 2}");
      ("recursion",
       "fib6[n_] := If[n < 2, n, fib6[n-1] + fib6[n-2]]; fib6[15]", "610");
      ("redefinition replaces", "h6[x_] := 1; h6[x_] := 2; h6[0]", "2");
      ("hold prevents evaluation", "Hold[1 + 1]", "Hold[1 + 1]");
      ("evaluate pierces nothing here", "Head[Hold[1 + 1]]", "Hold") ]

let lists =
  eval_cases "lists"
    [ ("range", "Range[5]", "{1, 2, 3, 4, 5}");
      ("range bounds", "Range[2, 10, 3]", "{2, 5, 8}");
      ("table", "Table[i*i, {i, 4}]", "{1, 4, 9, 16}");
      ("table matrix", "Table[i + j, {i, 2}, {j, 2}]", "{{2, 3}, {3, 4}}");
      ("length", "Length[{a, b, c}]", "3");
      ("first last", "{First[{1, 2, 3}], Last[{1, 2, 3}]}", "{1, 3}");
      ("rest most", "{Rest[{1, 2, 3}], Most[{1, 2, 3}]}", "{{2, 3}, {1, 2}}");
      ("append", "Append[{1, 2}, 3]", "{1, 2, 3}");
      ("join", "Join[{1}, {2, 3}]", "{1, 2, 3}");
      ("reverse", "Reverse[Range[4]]", "{4, 3, 2, 1}");
      ("sort", "Sort[{3, 1, 2}]", "{1, 2, 3}");
      ("sort custom", "Sort[{1, 2, 3}, #1 > #2 &]", "{3, 2, 1}");
      ("total", "Total[Range[100]]", "5050");
      ("total matrix", "Total[{{1, 2}, {3, 4}}]", "{4, 6}");
      ("dot", "{1, 2, 3} . {4, 5, 6}", "32");
      ("part", "{10, 20, 30}[[2]]", "20");
      ("part negative", "{10, 20, 30}[[-1]]", "30");
      ("part nested", "{{1, 2}, {3, 4}}[[2, 1]]", "3");
      ("part head", "f[a, b][[0]]", "f");
      ("constant array", "ConstantArray[7, 3]", "{7, 7, 7}") ]

let higher_order =
  eval_cases "higher-order"
    [ ("map", "Map[#*10 &, {1, 2, 3}]", "{10, 20, 30}");
      ("map preserves head", "Map[f, g[1, 2]]", "g[f[1], f[2]]");
      ("apply", "Apply[Plus, {1, 2, 3}]", "6");
      ("fold", "Fold[Plus, 0, Range[10]]", "55");
      ("foldlist", "FoldList[Plus, 0, {1, 2, 3}]", "{0, 1, 3, 6}");
      ("nest", "Nest[#*2 &, 1, 10]", "1024");
      ("nestlist", "NestList[#+1 &, 0, 3]", "{0, 1, 2, 3}");
      ("nestwhile", "NestWhile[#*2 &, 1, # < 100 &]", "128");
      ("fixedpoint", "FixedPoint[Floor[#/2] &, 100]", "0");
      ("select", "Select[Range[10], EvenQ]", "{2, 4, 6, 8, 10}");
      ("count", "Count[{1, 2.0, 3, x}, _Integer]", "2");
      ("alltrue", "AllTrue[{2, 4}, EvenQ]", "True");
      ("anytrue", "AnyTrue[{1, 3}, EvenQ]", "False");
      ("mapindexed", "MapIndexed[f, {a, b}]", "{f[a, {1}], f[b, {2}]}") ]

let control_flow =
  eval_cases "control flow"
    [ ("if true", "If[1 < 2, \"yes\", \"no\"]", "\"yes\"");
      ("if false branch missing", "If[False, 5]", "Null");
      ("if symbolic stays", "If[c7, 1, 2]", "If[c7, 1, 2]");
      ("while", "i7 = 0; While[i7 < 5, i7++]; i7", "5");
      ("do", "s7 = 0; Do[s7 += i, {i, 10}]; s7", "55");
      ("for", "For[j7 = 0; t7 = 1, j7 < 4, j7++, t7 *= 2]; t7", "16");
      ("which", "Which[False, 1, True, 2]", "2");
      ("switch", "Switch[7, _Integer, \"int\", _, \"other\"]", "\"int\"");
      ("break", "k7 = 0; While[True, k7++; If[k7 > 2, Break[]]]; k7", "3");
      ("continue", "c8 = 0; n8 = 0; While[n8 < 5, n8++; If[EvenQ[n8], Continue[]]; c8++]; c8",
       "3");
      ("compound returns last", "1; 2; 3", "3");
      ("increment returns old", "m8 = 5; {m8++, m8}", "{5, 6}");
      ("preincrement returns new", "m9 = 5; {PreIncrement[m9], m9}", "{6, 6}") ]

let mutability =
  eval_cases "mutability semantics (F5)"
    [ ("list copy on part set", "a9 = {1, 2, 3}; b9 = a9; a9[[3]] = -20; {a9, b9}",
       "{{1, 2, -20}, {1, 2, 3}}");
      ("tensor copy on write", "t9 = Range[3]; u9 = t9; t9[[1]] = 9; {t9[[1]], u9[[1]]}",
       "{9, 1}");
      ("string replace copies",
       {|({#, StringReplace[#, "foo" -> "grok"]} &)["foobar"]|},
       "{\"foobar\", \"grokbar\"}");
      ("nested part set", "mx = {{1, 2}, {3, 4}}; mx[[2, 1]] = 9; mx", "{{1, 2}, {9, 4}}") ]

let strings =
  eval_cases "strings"
    [ ("length", "StringLength[\"hello\"]", "5");
      ("join", "\"foo\" <> \"bar\" <> \"baz\"", "\"foobarbaz\"");
      ("take drop", "{StringTake[\"abcdef\", 2], StringDrop[\"abcdef\", 2]}",
       "{\"ab\", \"cdef\"}");
      ("reverse", "StringReverse[\"abc\"]", "\"cba\"");
      ("characters", "Characters[\"ab\"]", "{\"a\", \"b\"}");
      ("char codes", "ToCharacterCode[\"AB\"]", "{65, 66}");
      ("from codes", "FromCharacterCode[{104, 105}]", "\"hi\"");
      ("tostring", "ToString[1 + 2]", "\"3\"") ]

let symbolic =
  eval_cases "symbolic computation (F8)"
    [ ("inert residue", "Sin[q9] + q9", "q9 + Sin[q9]");
      ("replace", "Sin[x9] /. x9 -> 0.0", "0.0");
      ("d sum", "D[x8 + Sin[x8], x8] /. x8 -> 0.0", "2.0");
      ("d product rule", "D[x7*x7, x7] /. x7 -> 3", "6");
      ("d chain rule", "D[Sin[2*x6], x6] /. x6 -> 0.0", "2.0");
      ("head", "Head[Sin[zz]]", "Sin");
      ("atomq", "{AtomQ[5], AtomQ[f[5]]}", "{True, False}");
      ("freeq", "{FreeQ[f[ab], cd], FreeQ[f[ab], ab]}", "{True, False}");
      ("matchq", "MatchQ[{1, 2}, {_Integer, _Integer}]", "True") ]

let random =
  eval_cases "random (deterministic stream)"
    [ ("seeded reproducible",
       "SeedRandom[7]; r1 = RandomReal[]; SeedRandom[7]; r1 == RandomReal[]", "True");
      ("range respected",
       "SeedRandom[1]; AllTrue[Table[RandomReal[{2, 3}], {20}], 2 <= # <= 3 &]", "True");
      ("integer bounds",
       "SeedRandom[2]; AllTrue[Table[RandomInteger[{5, 9}], {20}], 5 <= # <= 9 &]",
       "True");
      ("matrix dims", "SeedRandom[3]; Length[RandomReal[1, {4, 2}]]", "4") ]

let test_abort_interpreter () =
  K.Session.reset ();
  Wolf_base.Abort_signal.clear ();
  Wolf_base.Abort_signal.abort_after 100;
  (match K.Session.eval_protected (Parser.parse "i = 0; While[True, If[i > 3, i--, i++]]") with
   | Error Wolf_base.Abort_signal.Aborted -> ()
   | Error e -> Alcotest.failf "unexpected error %s" (Printexc.to_string e)
   | Ok v -> Alcotest.failf "infinite loop returned %s" (Form.input_form v));
  (* session state survives, possibly mutated by the aborted computation *)
  match K.Session.run "i" with
  | Expr.Int _ -> ()
  | v -> Alcotest.failf "session variable lost: %s" (Form.input_form v)

let test_findroot () =
  K.Session.reset ();
  Wolf_runtime.Hooks.auto_compile_enabled := false;
  let root =
    match K.Session.run "x0 /. FindRoot[Sin[x0] + E^x0, {x0, 0}]" with
    | Expr.Real r -> r
    | e -> Alcotest.failf "no numeric root: %s" (Form.input_form e)
  in
  Wolf_runtime.Hooks.auto_compile_enabled := true;
  (* the paper's example: root near -0.588533 *)
  Alcotest.(check (float 1e-5)) "paper's root" (-0.588533) root

let test_protected () =
  K.Session.reset ();
  match K.Session.run "Plus = 5" with
  | exception Wolf_base.Errors.Eval_error _ -> ()
  | v -> Alcotest.failf "assignment to Plus succeeded: %s" (Form.input_form v)

let tests =
  [ arithmetic; comparisons; infinite_evaluation;
    Alcotest.test_case "iteration limit" `Quick test_infinite_loop_hits_limit;
    scoping; functions; lists; higher_order; control_flow; mutability; strings;
    symbolic; random;
    Alcotest.test_case "abortable evaluation" `Quick test_abort_interpreter;
    Alcotest.test_case "FindRoot" `Quick test_findroot;
    Alcotest.test_case "protected symbols" `Quick test_protected ]
