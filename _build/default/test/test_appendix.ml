(* Artifact appendix (experiment E9): the intermediate representations of
   addOne at each stage, as the paper's A.6 walks through, pinned as golden
   outputs. *)

open Wolf_compiler

let add_one = {|Function[{Typed[arg, "MachineInteger"]}, arg + 1]|}

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_compile_to_ast () =
  (* A.6.1: no macros apply, the program is unchanged *)
  Alcotest.(check string) "unchanged"
    {|Function[{Typed[arg, "MachineInteger"]}, arg + 1]|}
    (Wolfram.compile_to_ast add_one)

let test_compile_to_wir () =
  (* A.6.2: untyped WIR with LoadArgument and an unresolved Plus *)
  let text = Wolfram.compile_to_ir ~optimize:false add_one in
  List.iter
    (fun needle ->
       Alcotest.(check bool) needle true (contains text needle))
    [ "LoadArgument arg0"; "Call Plus"; "Return" ];
  (* the annotated argument carries its type (as in the paper's A.6.2 dump),
     but nothing is resolved yet *)
  Alcotest.(check bool) "unresolved" false (contains text "checked_binary_plus")

let test_compile_to_twir () =
  (* A.6.3: typed, resolved to the checked runtime primitive *)
  let text = Wolfram.compile_to_ir ~optimize:true add_one in
  List.iter
    (fun needle ->
       Alcotest.(check bool) needle true (contains text needle))
    [ ": (\"Integer64\") -> \"Integer64\"";
      "Native`PrimitiveFunction[checked_binary_plus_I64_I64]";
      "AbortCheck" ]

let test_export_ocaml () =
  (* A.6.4 analogue: native-code source export *)
  match Wolfram.export_string ~format:`OCaml add_one with
  | Ok src ->
    List.iter
      (fun needle -> Alcotest.(check bool) needle true (contains src needle))
      [ "wolf_add"; "Wolf_plugin.register" ]
  | Error e -> Alcotest.fail e

let test_export_c () =
  (* A.6.4/F10: standalone C with checked arithmetic *)
  match Wolfram.export_string ~format:`C add_one with
  | Ok src ->
    List.iter
      (fun needle -> Alcotest.(check bool) needle true (contains src needle))
      [ "int64_t"; "wolf_add"; "__builtin_add_overflow" ]
  | Error e -> Alcotest.fail e

let test_wvm_dump () =
  (* A.6 / §2.2: the CompiledFunction serialised form *)
  let w = Wolf_backends.Wvm.compile (Wolf_wexpr.Parser.parse add_one) in
  let dump = Wolf_backends.Wvm.dump w in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains dump needle))
    [ "CompiledFunction[{11, 12, 5468}"; "_Integer"; "Plus Op"; "Return"; "Evaluate]" ]

let test_export_library () =
  (* A.6.6/F10: FunctionCompileExportLibrary *)
  if Wolf_backends.Jit.available () then begin
    let path = Filename.temp_file "addone" ".cmxs" in
    match Wolfram.export_library ~path add_one with
    | Ok entry ->
      Alcotest.(check bool) "library file written" true (Sys.file_exists path);
      Alcotest.(check bool) "entry symbol" true (String.length entry > 0);
      Sys.remove path
    | Error e -> Alcotest.fail e
  end

let test_pipeline_options_in_meta () =
  let c =
    Pipeline.compile
      ~options:{ Options.default with Options.abort_handling = false }
      ~name:"Main" (Wolf_wexpr.Parser.parse add_one)
  in
  Alcotest.(check (option string)) "AbortHandling recorded" (Some "false")
    (List.assoc_opt "AbortHandling" c.Pipeline.program.Wir.pmeta)

let tests =
  [ Alcotest.test_case "CompileToAST (A.6.1)" `Quick test_compile_to_ast;
    Alcotest.test_case "CompileToIR unoptimised (A.6.2)" `Quick test_compile_to_wir;
    Alcotest.test_case "CompileToIR typed (A.6.3)" `Quick test_compile_to_twir;
    Alcotest.test_case "OCaml export (A.6.4)" `Quick test_export_ocaml;
    Alcotest.test_case "C export (A.6.4)" `Quick test_export_c;
    Alcotest.test_case "WVM dump (§2.2)" `Quick test_wvm_dump;
    Alcotest.test_case "library export (A.6.6)" `Quick test_export_library;
    Alcotest.test_case "options in program metadata" `Quick test_pipeline_options_in_meta ]
