(* The compiler's Wolfram-implemented standard library (the paper's Min,
   §4.4), the functional-construct desugarings, and the second tier of
   interpreter builtins. *)

open Wolf_wexpr
open Wolf_compiler

let parse = Parser.parse
let expr = Alcotest.testable (Fmt.of_to_string Expr.to_string) Expr.equal

let compiled name src args expected =
  Wolfram.init ();
  let cf = Wolfram.function_compile ~target:Wolfram.Threaded ~name (parse src) in
  Alcotest.check expr name (parse expected) (Wolfram.call cf args)

let test_min_paper_example () =
  (* scalar Min at two instantiations, plus the container form — §4.4 *)
  compiled "min ints"
    {|Function[{Typed[a, "MachineInteger"], Typed[b, "MachineInteger"]}, Min[a, b]]|}
    [ Expr.Int 9; Expr.Int 4 ] "4";
  compiled "min reals"
    {|Function[{Typed[a, "Real64"], Typed[b, "Real64"]}, Min[a, b]]|}
    [ Expr.Real 1.5; Expr.Real 0.5 ] "0.5";
  compiled "min over container"
    {|Function[{Typed[v, "PackedArray"["Integer64", 1]]}, Min[v]]|}
    [ parse "{5, 2, 9}" ] "2";
  compiled "max over container"
    {|Function[{Typed[v, "PackedArray"["Real64", 1]]}, Max[v]]|}
    [ parse "{0.5, 2.25, 1.0}" ] "2.25"

let test_min_rejects_unordered () =
  (* complex numbers are Number but not Ordered: the qualifier must reject *)
  match
    Pipeline.compile ~name:"bad"
      (parse {|Function[{Typed[a, "ComplexReal64"]}, Min[a, a]]|})
  with
  | exception Wolf_base.Errors.Compile_error _ -> ()
  | _ -> Alcotest.fail "Min accepted a non-Ordered type"

let test_stdlib_functions () =
  compiled "clip" {|Function[{Typed[x, "MachineInteger"]}, Clip[x, 0, 10]]|}
    [ Expr.Int 42 ] "10";
  compiled "sign real" {|Function[{Typed[x, "Real64"]}, Sign[x]]|}
    [ Expr.Real (-2.5) ] "-1";
  compiled "mean" {|Function[{Typed[v, "PackedArray"["Real64", 1]]}, Mean[v]]|}
    [ parse "{1.0, 2.0, 6.0}" ] "3.0";
  compiled "norm" {|Function[{Typed[v, "PackedArray"["Real64", 1]]}, Norm[v]]|}
    [ parse "{3.0, 4.0}" ] "5.0";
  compiled "fibonacci" {|Function[{Typed[n, "MachineInteger"]}, Fibonacci[n]]|}
    [ Expr.Int 40 ] "102334155";
  compiled "gcd" {|Function[{Typed[a, "MachineInteger"], Typed[b, "MachineInteger"]},
                     GCD[a, b]]|}
    [ Expr.Int 48; Expr.Int 18 ] "6"

let test_instances_shared () =
  (* two uses at the same type instantiate the implementation once *)
  let c =
    Pipeline.compile ~name:"shared"
      (parse
         {|Function[{Typed[a, "MachineInteger"], Typed[b, "MachineInteger"],
                     Typed[d, "MachineInteger"]},
            Min[a, Min[b, d]]]|})
  in
  let instances =
    List.filter
      (fun (f : Wir.func) ->
         String.length f.Wir.fname >= 4 && String.sub f.Wir.fname 0 4 = "Min$")
      c.Pipeline.program.Wir.funcs
  in
  Alcotest.(check bool) "at most one Min instance" true (List.length instances <= 1)

let test_functional_macros () =
  compiled "nest" {|Function[{Typed[n, "MachineInteger"]}, Nest[Function[{x}, x*2], 1, n]]|}
    [ Expr.Int 10 ] "1024";
  compiled "fold"
    {|Function[{Typed[v, "PackedArray"["Integer64", 1]]},
       Fold[Function[{a, b}, a + b*b], 0, v]]|}
    [ parse "{1, 2, 3}" ] "14";
  compiled "map"
    {|Function[{Typed[v, "PackedArray"["Integer64", 1]]},
       Total[Map[Function[{x}, x*x], v]]]|}
    [ parse "{1, 2, 3, 4}" ] "30";
  (* Map must not mutate its argument (copy-on-write through the macro) *)
  compiled "map preserves input"
    {|Function[{Typed[v, "PackedArray"["Integer64", 1]]},
       Module[{w = Map[Function[{x}, x*10], v]}, v[[1]]*1000 + w[[1]]]]|}
    [ parse "{7, 8}" ] "7070"

let test_dominator_cse () =
  (* zr*zr appears in the loop condition block and the body block; the
     condition block dominates the body, so dominator-scoped CSE removes
     the recomputation *)
  let c =
    Pipeline.compile ~name:"m"
      (parse
         {|Function[{Typed[cr, "Real64"]},
            Module[{zr = 0.1},
             While[zr*zr < 4.0,
              zr = zr*zr + cr];
             zr]]|})
  in
  let count =
    List.fold_left
      (fun acc (f : Wir.func) ->
         List.fold_left
           (fun acc (b : Wir.block) ->
              acc
              + List.length
                  (List.filter
                     (function
                       | Wir.Call { callee = Wir.Resolved { base = "binary_times"; _ };
                                    args = [| Wir.Ovar a; Wir.Ovar b |]; _ } ->
                         a.Wir.vid = b.Wir.vid
                       | _ -> false)
                     b.Wir.instrs))
           acc f.Wir.blocks)
      0 c.Pipeline.program.Wir.funcs
  in
  Alcotest.(check int) "zr*zr computed once" 1 count

(* ---------------- second-tier interpreter builtins ---------------- *)

let interp_cases =
  [ ("Take[{1,2,3,4,5}, 2]", "{1, 2}");
    ("Take[{1,2,3,4,5}, -2]", "{4, 5}");
    ("Take[Range[9], {3, 5}]", "{3, 4, 5}");
    ("Drop[{1,2,3,4}, 1]", "{2, 3, 4}");
    ("Drop[{1,2,3,4}, -2]", "{1, 2}");
    ("Flatten[{{1,{2}},{3}}]", "{1, 2, 3}");
    ("Flatten[{Range[2], Range[2]}]", "{1, 2, 1, 2}");
    ("Partition[Range[6], 2]", "{{1, 2}, {3, 4}, {5, 6}}");
    ("Partition[Range[7], 2]", "{{1, 2}, {3, 4}, {5, 6}}");
    ("Position[{a9, b9, a9}, a9]", "{{1}, {3}}");
    ("Position[Range[5], _?EvenQ]", "{{2}, {4}}");
    ("MemberQ[{1,2,3}, 2]", "True");
    ("MemberQ[{1,2,3}, _Real]", "False");
    ("DeleteDuplicates[{1,2,1,3,2}]", "{1, 2, 3}");
    ("Accumulate[{1,2,3}]", "{1, 3, 6}");
    ("Differences[{1,4,9,16}]", "{3, 5, 7}");
    ("Transpose[{{1,2},{3,4}}]", "{{1, 3}, {2, 4}}");
    ("Transpose[{{1,2,3},{4,5,6}}]", "{{1, 4}, {2, 5}, {3, 6}}");
    ("IdentityMatrix[3][[2,2]]", "1");
    ("Norm[{3,4}]", "5.0");
    ("Mean[{1,2,3}]", "2");
    ("Mean[{1,2}]", "1.5");
    ("GCD[48, 18, 12]", "6");
    ("LCM[4, 6]", "12");
    ("Factorial[5]", "120");
    ("Factorial[25]", "15511210043330985984000000");
    ("Fibonacci[10]", "55");
    ("Fibonacci[100]", "354224848179261915075");
    ("IntegerDigits[1234]", "{1, 2, 3, 4}");
    ("FromDigits[{1,2,3}]", "123");
    ("Sign[-5]", "-1");
    ("Sign[0]", "0");
    ("Clip[42, {0, 10}]", "10");
    ("Clip[5, {0, 10}]", "5");
    ("StringSplit[\"a,b,c\", \",\"]", "{\"a\", \"b\", \"c\"}");
    ("StringContainsQ[\"foobar\", \"oba\"]", "True");
    ("StringContainsQ[\"foobar\", \"xyz\"]", "False");
    ("StringStartsQ[\"foobar\", \"foo\"]", "True");
    ("StringRepeat[\"ab\", 3]", "\"ababab\"") ]

let test_interp_builtins () =
  Wolfram.init ();
  List.iter
    (fun (src, expected) ->
       Alcotest.(check string) src expected (Form.input_form (Wolfram.interpret src)))
    interp_cases

(* property: Take[l, n] ++ Drop[l, n] == l *)
let prop_take_drop =
  QCheck2.Test.make ~name:"Take ++ Drop = identity" ~count:200
    QCheck2.Gen.(pair (list_size (int_range 0 12) (int_range (-50) 50)) (int_range 0 12))
    (fun (l, n) ->
       Wolfram.init ();
       let n = min n (List.length l) in
       let lst =
         Printf.sprintf "{%s}" (String.concat ", " (List.map string_of_int l))
       in
       let src = Printf.sprintf "Join[Take[%s, %d], Drop[%s, %d]] === %s" lst n lst n lst in
       List.length l = 0 || Expr.is_true (Wolfram.interpret src))

let prop_accumulate_last_is_total =
  QCheck2.Test.make ~name:"Last[Accumulate[l]] = Total[l]" ~count:200
    QCheck2.Gen.(list_size (int_range 1 15) (int_range (-100) 100))
    (fun l ->
       Wolfram.init ();
       let lst =
         Printf.sprintf "{%s}" (String.concat ", " (List.map string_of_int l))
       in
       Expr.is_true
         (Wolfram.interpret (Printf.sprintf "Last[Accumulate[%s]] === Total[%s]" lst lst)))

let tests =
  [ Alcotest.test_case "Min (the paper's §4.4 example)" `Quick test_min_paper_example;
    Alcotest.test_case "qualifier rejects complex" `Quick test_min_rejects_unordered;
    Alcotest.test_case "stdlib functions compile" `Quick test_stdlib_functions;
    Alcotest.test_case "instances shared per type" `Quick test_instances_shared;
    Alcotest.test_case "Nest/Fold/Map compile (macro desugaring)" `Quick test_functional_macros;
    Alcotest.test_case "dominator-scoped CSE" `Quick test_dominator_cse;
    Alcotest.test_case "second-tier builtins" `Quick test_interp_builtins;
    QCheck_alcotest.to_alcotest prop_take_drop;
    QCheck_alcotest.to_alcotest prop_accumulate_last_is_total ]
