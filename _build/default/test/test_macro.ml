(* The hygienic macro system (S9) and binding analysis (S10). *)

open Wolf_wexpr
open Wolf_compiler

let parse = Parser.parse
let expr = Alcotest.testable (Fmt.of_to_string Expr.to_string) Expr.equal

let expand src = Macro.expand (Macro.builtin_env ()) (parse src)

let test_and_desugaring () =
  (* the paper's worked example (§4.2) *)
  Alcotest.check expr "unary" (parse "x") (expand "And[x]");
  Alcotest.check expr "false shortcut" (parse "False") (expand "And[False, y]");
  Alcotest.check expr "true skipped" (parse "x") (expand "And[True, x]");
  Alcotest.check expr "binary to If" (parse "If[x, y, False]") (expand "And[x, y]");
  Alcotest.check expr "nary nests"
    (parse "If[If[a, b, False], c, False]")
    (expand "a && b && c")

let test_or_desugaring () =
  Alcotest.check expr "binary" (parse "If[x, True, y]") (expand "Or[x, y]");
  Alcotest.check expr "true shortcut" (parse "True") (expand "Or[True, z]")

let test_nary_arith () =
  Alcotest.check expr "plus" (parse "Plus[Plus[a, b], c]") (expand "a + b + c");
  Alcotest.check expr "times" (parse "Times[Times[a, b], c]") (expand "a*b*c")

let test_updates () =
  Alcotest.check expr "AddTo" (parse "x = Plus[x, 5]") (expand "x += 5");
  Alcotest.check expr "Increment keeps old value"
    (parse "CompoundExpression[Set[x, Plus[x, 1]], Subtract[x, 1]]")
    (expand "x++")

let test_safe_folds () =
  Alcotest.check expr "If[True]" (parse "a") (expand "If[True, a, b]");
  Alcotest.check expr "If[False]" (parse "b") (expand "If[False, a, b]");
  Alcotest.check expr "Power 1" (parse "x") (expand "x^1")

let test_loop_desugaring () =
  (* Do and For lower to While before the IR sees them *)
  let has_while e =
    let found = ref false in
    let rec go = function
      | Expr.Normal (Expr.Sym h, args) ->
        if Symbol.name h = "While" then found := true;
        Array.iter go args
      | _ -> ()
    in
    go e;
    !found
  in
  Alcotest.(check bool) "Do becomes While" true (has_while (expand "Do[f[i], {i, 1, 10}]"));
  Alcotest.(check bool) "For becomes While" true
    (has_while (expand "For[i = 0, i < 4, i++, f[i]]"))

let test_hygiene () =
  (* the Do macro introduces a loop counter; a user variable with the same
     textual name must not be captured *)
  let expanded = expand "Do[total = total + i$do, {3}]" in
  let user = Symbol.intern "i$do" in
  let rec binds_user = function
    | Expr.Normal (Expr.Sym m, [| Expr.Normal (_, inits); _ |])
      when Symbol.name m = "Module" ->
      Array.exists
        (function
          | Expr.Normal (_, [| Expr.Sym v; _ |]) -> Symbol.equal v user
          | Expr.Sym v -> Symbol.equal v user
          | _ -> false)
        inits
    | Expr.Normal (_, args) -> Array.exists binds_user args
    | _ -> false
  in
  Alcotest.(check bool) "macro counter renamed away from user symbol" false
    (binds_user expanded);
  (* and the body still references the user's symbol *)
  Alcotest.(check bool) "user symbol preserved" false
    (Pattern.free_of expanded user)

let test_user_macro () =
  (* §4.7: user-registered macros, optionally conditioned on options *)
  let env = Macro.create_env ~parent:(Macro.builtin_env ()) "user" in
  Macro.register env "Map"
    ~condition:(fun opts ->
        match List.assoc_opt "TargetSystem" opts with
        | Some (Expr.Str "CUDA") -> true
        | _ -> false)
    [ (parse "Map[f_, lst_]", parse "CUDAMap[f, lst]") ];
  Alcotest.check expr "condition off: unchanged"
    (parse "Map[f, lst]")
    (Macro.expand env ~options:[ ("TargetSystem", Expr.str "LLVM") ] (parse "Map[f, lst]"));
  Alcotest.check expr "condition on: rewritten"
    (parse "CUDAMap[f, lst]")
    (Macro.expand env ~options:[ ("TargetSystem", Expr.str "CUDA") ] (parse "Map[f, lst]"))

let test_nontermination_guard () =
  let env = Macro.create_env "loop" in
  Macro.register env "f" [ (parse "f[x_]", parse "f[f[x]]") ];
  match Macro.expand env (parse "f[1]") with
  | exception Wolf_base.Errors.Compile_error _ -> ()
  | e -> Alcotest.failf "diverging macro returned %s" (Expr.to_string e)

(* ---------------- binding analysis ---------------- *)

let analyze src = Binding.analyze_function (expand src)

let test_binding_flattening () =
  (* the paper's example: Module[{a=1,b=1}, a+b+Module[{a=3},a]] flattens
     with the inner a renamed *)
  let a = analyze "Function[{n}, Module[{a = 1, b = 1}, a + b + Module[{a = 3}, a]]]" in
  Alcotest.(check int) "three locals" 3 (List.length a.Binding.locals);
  let names = List.map Symbol.name a.Binding.locals in
  Alcotest.(check bool) "all renamed apart" true
    (List.length (List.sort_uniq compare names) = 3)

let test_binding_params () =
  let a = analyze {|Function[{Typed[x, "MachineInteger"], y}, x + y]|} in
  (match a.Binding.params with
   | [ p1; p2 ] ->
     Alcotest.(check bool) "first annotated" true (Option.is_some p1.Binding.pspec);
     Alcotest.(check bool) "second not" true (Option.is_none p2.Binding.pspec)
   | _ -> Alcotest.fail "two parameters expected")

let test_binding_slots () =
  let a = analyze "Function[#1 + #2]" in
  Alcotest.(check int) "slots become parameters" 2 (List.length a.Binding.params)

let test_escape_analysis () =
  let a =
    analyze "Function[{n}, Module[{k = n + 1}, Function[{x}, x + k]]]"
  in
  Alcotest.(check bool) "captured local marked escaped" true
    (List.exists (fun s -> String.length (Symbol.name s) >= 1) a.Binding.escaped
     && List.length a.Binding.escaped >= 1)

let test_with_substitutes () =
  let a = analyze "Function[{n}, With[{c = 4}, n + c]]" in
  Alcotest.(check int) "no residual locals" 0 (List.length a.Binding.locals)

let tests =
  [ Alcotest.test_case "And desugaring (paper §4.2)" `Quick test_and_desugaring;
    Alcotest.test_case "Or desugaring" `Quick test_or_desugaring;
    Alcotest.test_case "n-ary arithmetic" `Quick test_nary_arith;
    Alcotest.test_case "update operators" `Quick test_updates;
    Alcotest.test_case "always-safe folds" `Quick test_safe_folds;
    Alcotest.test_case "loop desugaring" `Quick test_loop_desugaring;
    Alcotest.test_case "hygiene" `Quick test_hygiene;
    Alcotest.test_case "user macros with conditions" `Quick test_user_macro;
    Alcotest.test_case "non-termination guard" `Quick test_nontermination_guard;
    Alcotest.test_case "scope flattening" `Quick test_binding_flattening;
    Alcotest.test_case "typed parameters" `Quick test_binding_params;
    Alcotest.test_case "slot normalisation" `Quick test_binding_slots;
    Alcotest.test_case "escape analysis" `Quick test_escape_analysis;
    Alcotest.test_case "With substitutes" `Quick test_with_substitutes ]
