(* Table 1 (experiment E2): each objective F1–F10 asserted at the support
   level the paper reports for both compilers. *)

module F = Bench_support.Features

let expected =
  (* (objective prefix, new compiler, bytecode compiler) — Table 1 *)
  [ ("F1", F.Full, F.Full);
    ("F2", F.Full, F.Full);
    ("F3", F.Full, F.Full);
    ("F4", F.Full, F.Partial);
    ("F5", F.Full, F.Partial);
    ("F6", F.Full, F.None_);
    ("F7", F.Full, F.Partial);
    ("F8", F.Full, F.None_);
    ("F9", F.Full, F.Full);
    ("F10", F.Full, F.Partial) ]

let level = function
  | F.Full -> "full"
  | F.Partial -> "partial"
  | F.None_ -> "none"

let test_table1 () =
  let results = F.all () in
  List.iter2
    (fun (name, got_new, got_wvm) (prefix, want_new, want_wvm) ->
       Alcotest.(check bool)
         (Printf.sprintf "%s name matches row" prefix)
         true
         (String.length name >= String.length prefix
          && String.sub name 0 (String.length prefix) = prefix);
       Alcotest.(check string) (name ^ " (new compiler)") (level want_new) (level got_new);
       Alcotest.(check string) (name ^ " (bytecode)") (level want_wvm) (level got_wvm))
    results expected

let tests = [ Alcotest.test_case "Table 1 feature matrix" `Slow test_table1 ]
