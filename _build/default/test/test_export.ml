(* Standalone C export (F10/S24): the generated C compiles with the system C
   compiler and, when run, agrees with the compiled OCaml result — a full
   cross-language differential test (skipped when no cc is available). *)

open Wolf_wexpr
open Wolf_compiler
open Wolf_runtime
module B = Wolf_backends

let have_cc = lazy (Sys.command "cc --version >/dev/null 2>&1" = 0)

let run_c_driver name src (args : Rtval.t list) : string option =
  let c = Pipeline.compile ~name (Parser.parse src) in
  match B.C_emit.emit_with_driver c ~args with
  | Error e -> Alcotest.fail e
  | Ok emitted ->
    let dir = Filename.temp_file "wolfc" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    let cfile = Filename.concat dir (name ^ ".c") in
    let exe = Filename.concat dir name in
    let oc = open_out cfile in
    output_string oc emitted.B.C_emit.source;
    close_out oc;
    if Sys.command (Printf.sprintf "cc -O2 -o %s %s -lm 2>%s.log" exe cfile exe) <> 0
    then Alcotest.failf "%s: cc failed" name;
    let ic = Unix.open_process_in exe in
    let line = input_line ic in
    ignore (Unix.close_process_in ic);
    Some (String.trim line)

let differential_c name src args =
  if not (Lazy.force have_cc) then ()
  else begin
    let c = Pipeline.compile ~name (Parser.parse src) in
    let native = B.Native.compile c in
    let expected =
      match native.Rtval.call (Array.of_list args) with
      | Rtval.Int i -> string_of_int i
      | Rtval.Bool b -> if b then "True" else "False"
      | Rtval.Real r -> Printf.sprintf "%.17g" r
      | v -> Alcotest.failf "unexpected result kind %s" (Rtval.type_name v)
    in
    match run_c_driver name src args with
    | Some got ->
      (match float_of_string_opt expected, float_of_string_opt got with
       | Some e, Some g ->
         Alcotest.(check (float 1e-9)) name e g
       | _ -> Alcotest.(check string) name expected got)
    | None -> ()
  end

let test_c_scalar () =
  differential_c "csum"
    {|Function[{Typed[n, "MachineInteger"]},
       Module[{s = 0, i = 1}, While[i <= n, s = s + i*i; i = i + 1]; s]]|}
    [ Rtval.Int 100 ]

let test_c_real () =
  differential_c "cmandel"
    {|Function[{Typed[cr, "Real64"], Typed[ci, "Real64"]},
       Module[{zr = 0.0, zi = 0.0, iters = 0, t = 0.0},
        While[iters < 1000 && zr*zr + zi*zi < 4.0,
         t = zr*zr - zi*zi + cr; zi = 2.0*zr*zi + ci; zr = t; iters = iters + 1];
        iters]]|}
    [ Rtval.Real (-0.5); Rtval.Real 0.5 ]

let test_c_branches () =
  differential_c "cbranch"
    {|Function[{Typed[n, "MachineInteger"]},
       If[Mod[n, 2] == 0, Quotient[n, 2], 3*n + 1]]|}
    [ Rtval.Int 27 ]

let test_c_rejects_expression_values () =
  let c =
    Pipeline.compile ~name:"sym"
      (Parser.parse {|Function[{Typed[a, "Expression"]}, a + a]|})
  in
  match B.C_emit.emit c with
  | Error _ -> ()  (* paper §4.6: standalone mode drops engine-tied features *)
  | Ok _ -> Alcotest.fail "Expression values must be rejected in standalone C"

let test_c_strips_abort_checks () =
  let c =
    Pipeline.compile ~name:"loopy"
      (Parser.parse
         {|Function[{Typed[n, "MachineInteger"]},
            Module[{i = 0}, While[i < n, i = i + 1]; i]]|})
  in
  match B.C_emit.emit c with
  | Ok e ->
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "no abort machinery" false
      (contains e.B.C_emit.source "abort_check")
  | Error e -> Alcotest.fail e

let tests =
  [ Alcotest.test_case "C differential: integer loop" `Slow test_c_scalar;
    Alcotest.test_case "C differential: mandelbrot point" `Slow test_c_real;
    Alcotest.test_case "C differential: branches" `Slow test_c_branches;
    Alcotest.test_case "C rejects Expression values" `Quick test_c_rejects_expression_values;
    Alcotest.test_case "C export elides abort checks" `Quick test_c_strips_abort_checks ]
