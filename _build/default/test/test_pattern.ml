(* Pattern matcher (S6): blanks, sequences, head restrictions, named
   bindings, conditions, substitution splicing, and rule application. *)

open Wolf_wexpr

let parse = Parser.parse
let expr = Alcotest.testable (Fmt.of_to_string Expr.to_string) Expr.equal

let matches ?eval pat e = Pattern.match_expr ?eval ~pattern:(parse pat) (parse e)

let check_match ?eval name pat e expected_bindings =
  match matches ?eval pat e with
  | None -> Alcotest.failf "%s: %s should match %s" name pat e
  | Some binds ->
    List.iter
      (fun (var, value) ->
         match List.find_opt (fun (s, _) -> Symbol.name s = var) binds with
         | Some (_, v) -> Alcotest.check expr (name ^ "/" ^ var) (parse value) v
         | None -> Alcotest.failf "%s: no binding for %s" name var)
      expected_bindings

let check_no_match ?eval name pat e =
  match matches ?eval pat e with
  | None -> ()
  | Some _ -> Alcotest.failf "%s: %s must not match %s" name pat e

let test_blanks () =
  check_match "blank" "_" "anything" [];
  check_match "blank matches normal" "_" "f[x, y]" [];
  check_match "typed blank" "_Integer" "5" [];
  check_no_match "typed blank mismatch" "_Integer" "5.0";
  check_match "head restricted" "_f" "f[1, 2]" [];
  check_no_match "head restricted mismatch" "_f" "g[1]";
  check_match "named" "x_" "42" [ ("x", "42") ];
  check_match "named typed" "x_Real" "2.5" [ ("x", "2.5") ]

let test_structural () =
  check_match "nested" "f[x_, g[y_]]" "f[1, g[2]]" [ ("x", "1"); ("y", "2") ];
  check_no_match "arity" "f[_, _]" "f[1]";
  check_no_match "head" "f[_]" "g[1]";
  check_match "repeated name must agree" "f[x_, x_]" "f[3, 3]" [ ("x", "3") ];
  check_no_match "repeated name disagrees" "f[x_, x_]" "f[3, 4]";
  check_match "literal subterm" "f[1, x_]" "f[1, 9]" [ ("x", "9") ];
  check_no_match "literal subterm mismatch" "f[1, x_]" "f[2, 9]"

let test_sequences () =
  check_match "sequence" "f[x__]" "f[1, 2, 3]" [];
  check_no_match "sequence needs one" "f[x__]" "f[]";
  check_match "null sequence" "f[x___]" "f[]" [];
  check_match "prefix + sequence" "f[a_, rest__]" "f[1, 2, 3]" [ ("a", "1") ];
  check_match "sequence + suffix" "f[front__, z_]" "f[1, 2, 3]" [ ("z", "3") ];
  check_match "typed sequence" "f[x__Integer]" "f[1, 2]" [];
  check_no_match "typed sequence mismatch" "f[x__Integer]" "f[1, 2.0]";
  (* shortest-first search: x__ takes one element when possible *)
  (match matches "f[x__, y__]" "f[1, 2, 3]" with
   | Some binds ->
     let x = List.find (fun (s, _) -> Symbol.name s = "x") binds in
     Alcotest.check expr "x gets shortest" (parse "Sequence[1]") (snd x)
   | None -> Alcotest.fail "f[x__, y__] should match f[1,2,3]")

let test_sequence_substitution () =
  let rules = [ (parse "f[x__]", parse "g[x, x]") ] in
  Alcotest.check expr "sequence splices"
    (parse "g[1, 2, 1, 2]")
    (Pattern.replace_all ~rules (parse "f[1, 2]"))

let test_condition () =
  let eval = Wolf_kernel.Session.eval in
  Wolf_kernel.Session.init ();
  check_match ~eval "condition holds" "x_ /; x > 3" "5" [ ("x", "5") ];
  check_no_match ~eval "condition fails" "x_ /; x > 3" "2";
  check_no_match "condition without evaluator" "x_ /; x > 3" "5"

let test_replace_all () =
  let go rules e = Expr.to_string (Wolf_kernel.Session.run (e ^ " /. " ^ rules)) in
  Wolf_kernel.Session.init ();
  Alcotest.(check string) "simple" "Sin[q0]" (go "x -> q0" "Sin[x]");
  Alcotest.(check string) "outermost wins" "h[g[1]]"
    (Expr.to_string
       (Pattern.replace_all
          ~rules:[ (parse "f[a_]", parse "h[a]") ]
          (parse "f[g[1]]")));
  Alcotest.(check string) "no revisit of result" "f[f[9]]"
    (Expr.to_string
       (Pattern.replace_all
          ~rules:[ (parse "g[a_]", parse "f[f[a]]") ]
          (parse "g[9]")))

let test_replace_repeated () =
  Alcotest.check expr "rewrites to fixed point"
    (parse "h")
    (Pattern.replace_repeated
       ~rules:[ (parse "f[a_]", parse "a") ]
       (parse "f[f[f[h]]]"))

let test_free_of () =
  let x = Symbol.intern "x" in
  Alcotest.(check bool) "free" true (Pattern.free_of (parse "f[y, z]") x);
  Alcotest.(check bool) "bound occurrence" false (Pattern.free_of (parse "f[y, g[x]]") x);
  Alcotest.(check bool) "head occurrence" false (Pattern.free_of (parse "x[y]") x)

(* property: any generated expression matches _, and matches itself literally *)
let prop_blank_matches_all =
  QCheck2.Test.make ~name:"_ matches everything" ~count:200 Test_wexpr.gen_expr
    (fun e ->
       Option.is_some (Pattern.match_expr ~pattern:(parse "_") e))

let prop_self_match =
  QCheck2.Test.make ~name:"literal pattern matches itself" ~count:200
    Test_wexpr.gen_expr
    (fun e -> Option.is_some (Pattern.match_expr ~pattern:e e))

let prop_substitute_identity =
  QCheck2.Test.make ~name:"empty bindings substitute to identity" ~count:200
    Test_wexpr.gen_expr
    (fun e -> Expr.equal e (Pattern.substitute [] e))

let tests =
  [ Alcotest.test_case "blanks" `Quick test_blanks;
    Alcotest.test_case "structural" `Quick test_structural;
    Alcotest.test_case "sequences" `Quick test_sequences;
    Alcotest.test_case "sequence substitution" `Quick test_sequence_substitution;
    Alcotest.test_case "conditions" `Quick test_condition;
    Alcotest.test_case "replace_all" `Quick test_replace_all;
    Alcotest.test_case "replace_repeated" `Quick test_replace_repeated;
    Alcotest.test_case "free_of" `Quick test_free_of;
    QCheck_alcotest.to_alcotest prop_blank_matches_all;
    QCheck_alcotest.to_alcotest prop_self_match;
    QCheck_alcotest.to_alcotest prop_substitute_identity ]
