(* The type system (S14) and inference (S15): TypeSpecifier parsing,
   unification with class qualifiers, and whole-pipeline inference results. *)

open Wolf_wexpr
open Wolf_compiler

let parse = Parser.parse

let spec s = Types.parse_spec (parse s)

let test_atomic_specs () =
  let check name src expected =
    Alcotest.(check string) name expected (Types.to_string (spec src).Types.body)
  in
  check "machine integer alias" {|"MachineInteger"|} "\"Integer64\"";
  check "real alias" {|"Real"|} "\"Real64\"";
  check "boolean" {|"Boolean"|} "\"Boolean\"";
  check "string" {|"String"|} "\"String\"";
  check "expression" {|"Expression"|} "\"Expression\"";
  check "packed array" {|"PackedArray"["Real64", 2]|} "\"PackedArray\"[\"Real64\", 2]";
  check "tensor alias" {|"Tensor"["Integer64", 1]|} "\"PackedArray\"[\"Integer64\", 1]";
  check "function" {|{"Integer64", "Integer64"} -> "Real64"|}
    "{\"Integer64\", \"Integer64\"} -> \"Real64\""

let test_polymorphic_specs () =
  let s = spec {|TypeForAll[{"a"}, {"a"} -> "Real64"]|} in
  Alcotest.(check int) "one quantified var" 1 (List.length s.Types.vars);
  let s = spec {|TypeForAll[{"a"}, {Element["a", "Ordered"]}, {"a", "a"} -> "a"]|} in
  (match s.Types.vars with
   | [ (_, [ "Ordered" ]) ] -> ()
   | _ -> Alcotest.fail "qualifier not recorded");
  (* instantiation produces fresh variables each time *)
  let i1 = Types.instantiate s and i2 = Types.instantiate s in
  Alcotest.(check bool) "instances independent" false (Types.equal i1 i2)

let test_bad_specs () =
  List.iter
    (fun src ->
       match spec src with
       | exception Wolf_base.Errors.Compile_error _ -> ()
       | s -> Alcotest.failf "%s should be rejected, parsed %s" src
                (Types.to_string s.Types.body))
    [ "Typed[3]"; {|TypeForAll[{1}, "Integer64"]|} ]

let test_unify_basic () =
  let ok a b = Alcotest.(check bool) (a ^ " ~ " ^ b) true
      (Result.is_ok (Unify.unify (spec a).Types.body (spec b).Types.body))
  in
  let no a b = Alcotest.(check bool) (a ^ " !~ " ^ b) true
      (Result.is_error (Unify.unify (spec a).Types.body (spec b).Types.body))
  in
  ok {|"Integer64"|} {|"MachineInteger"|};
  no {|"Integer64"|} {|"Real64"|};
  no {|"PackedArray"["Real64", 1]|} {|"PackedArray"["Real64", 2]|};
  ok {|"PackedArray"["Real64", 2]|} {|"PackedArray"["Real64", 2]|};
  no {|{"Integer64"} -> "Integer64"|} {|{"Integer64", "Integer64"} -> "Integer64"|}

let test_unify_var_binding () =
  let v = Types.fresh_var () in
  Alcotest.(check bool) "var binds" true (Result.is_ok (Unify.unify v Types.int64));
  Alcotest.(check bool) "binding visible" true (Types.equal (Types.repr v) Types.int64);
  Alcotest.(check bool) "rebinding same ok" true (Result.is_ok (Unify.unify v Types.int64));
  Alcotest.(check bool) "conflicting fails" true (Result.is_error (Unify.unify v Types.real64))

let test_class_qualifiers () =
  Type_class.install_builtin ();
  let v = Types.fresh_var ~classes:[ "Ordered" ] () in
  Alcotest.(check bool) "ordered accepts Integer64" true
    (Result.is_ok (Unify.unify v Types.int64));
  let w = Types.fresh_var ~classes:[ "Ordered" ] () in
  Alcotest.(check bool) "ordered rejects Expression" true
    (Result.is_error (Unify.unify w Types.expression));
  let u = Types.fresh_var ~classes:[ "Integral" ] () in
  Alcotest.(check bool) "integral rejects Real64" true
    (Result.is_error (Unify.unify u Types.real64))

let test_speculation_rolls_back () =
  let v = Types.fresh_var () in
  ignore
    (Unify.speculate (fun () ->
         ignore (Unify.unify v Types.int64);
         None));
  Alcotest.(check bool) "binding rolled back" false (Types.is_ground v);
  ignore
    (Unify.speculate (fun () ->
         ignore (Unify.unify v Types.real64);
         Some ()));
  Alcotest.(check bool) "committed on Some" true (Types.equal (Types.repr v) Types.real64)

let test_mangle () =
  Alcotest.(check string) "scalar" "I64" (Types.mangle Types.int64);
  Alcotest.(check string) "array" "PA_R64_2" (Types.mangle (Types.packed Types.real64 2));
  Alcotest.(check string) "function" "FI64I64_B"
    (Types.mangle (Types.fn [ Types.int64; Types.int64 ] Types.boolean))

(* ---------------- whole-pipeline inference ---------------- *)

let infer_types src =
  let c = Pipeline.compile ~name:"t" (parse src) in
  let main = Wir.main c.Pipeline.program in
  ( Array.to_list
      (Array.map
         (fun (v : Wir.var) -> Types.to_string (Option.get v.Wir.vty))
         main.Wir.fparams),
    Types.to_string (Option.get main.Wir.ret_ty) )

let test_inference_results () =
  let check name src expected_ret =
    let _, ret = infer_types src in
    Alcotest.(check string) name expected_ret ret
  in
  check "int arith" {|Function[{Typed[n, "MachineInteger"]}, n + 1]|} "\"Integer64\"";
  check "promotion to real" {|Function[{Typed[n, "MachineInteger"]}, n + 0.5]|} "\"Real64\"";
  check "comparison" {|Function[{Typed[n, "MachineInteger"]}, n < 3]|} "\"Boolean\"";
  check "real function" {|Function[{Typed[x, "Real64"]}, Sin[x]]|} "\"Real64\"";
  check "int sin promotes" {|Function[{Typed[n, "MachineInteger"]}, Sin[n]]|} "\"Real64\"";
  check "string length" {|Function[{Typed[s, "String"]}, StringLength[s]]|} "\"Integer64\"";
  check "array element"
    {|Function[{Typed[v, "PackedArray"["Real64", 1]]}, v[[1]]]|} "\"Real64\"";
  check "array result"
    {|Function[{Typed[v, "PackedArray"["Integer64", 1]]}, Reverse[v]]|}
    "\"PackedArray\"[\"Integer64\", 1]";
  check "local inferred through loop"
    {|Function[{Typed[n, "MachineInteger"]},
       Module[{s = 0.0, i = 1}, While[i <= n, s = s + 1.5; i = i + 1]; s]]|}
    "\"Real64\"";
  check "if joins branches" {|Function[{Typed[b, "Boolean"]}, If[b, 1, 2]]|}
    "\"Integer64\""

let test_inference_errors () =
  let fails name src =
    match Pipeline.compile ~name:"t" (parse src) with
    | exception Wolf_base.Errors.Compile_error _ -> ()
    | _ -> Alcotest.failf "%s should fail to type" name
  in
  fails "string plus int" {|Function[{Typed[s, "String"]}, s + 1]|};
  fails "branch type mismatch" {|Function[{Typed[b, "Boolean"]}, If[b, 1, "x"]]|};
  fails "condition not boolean" {|Function[{Typed[n, "MachineInteger"]}, If[n, 1, 2]]|};
  fails "unknown function" {|Function[{Typed[n, "MachineInteger"]}, mystery[n]]|};
  fails "unannotated parameter polymorphic at top level"
    {|Function[{n}, n]|}

let test_overload_choice () =
  (* Plus picks the checked integer primitive for ints and the float one for
     reals; verify via the resolved names in the printed TWIR *)
  let c = Pipeline.compile ~name:"t" (parse {|Function[{Typed[n, "MachineInteger"]}, n + 1]|}) in
  let text = Wir_print.program_to_string c.Pipeline.program in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "checked int plus" true
    (contains text "checked_binary_plus_I64_I64")

let tests =
  [ Alcotest.test_case "atomic TypeSpecifiers" `Quick test_atomic_specs;
    Alcotest.test_case "polymorphic TypeSpecifiers" `Quick test_polymorphic_specs;
    Alcotest.test_case "malformed specs rejected" `Quick test_bad_specs;
    Alcotest.test_case "unification" `Quick test_unify_basic;
    Alcotest.test_case "variable binding" `Quick test_unify_var_binding;
    Alcotest.test_case "type-class qualifiers" `Quick test_class_qualifiers;
    Alcotest.test_case "speculation rollback" `Quick test_speculation_rolls_back;
    Alcotest.test_case "mangling" `Quick test_mangle;
    Alcotest.test_case "inference results" `Quick test_inference_results;
    Alcotest.test_case "inference errors" `Quick test_inference_errors;
    Alcotest.test_case "overload resolution" `Quick test_overload_choice ]
