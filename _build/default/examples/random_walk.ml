(* The paper's Figure 1 Notebook session: a random walk defined for the
   interpreter, the bytecode compiler, and the new compiler, with the same
   points produced by every path (they share the deterministic PRNG).

     dune exec examples/random_walk.exe [len]                              *)

open Wolf_wexpr
open Wolf_runtime

(* In[1]: the interpreted definition, verbatim from the paper *)
let interpreted_src =
  {|Function[{len},
     NestList[
      Module[{arg = RandomReal[{0, 2*Pi}]}, {-Cos[arg], Sin[arg]} + #]&,
      {0.0, 0.0},
      len]]|}

(* In[2]/In[3]: the loop form compiled by both compilers *)
let compiled_src =
  {|Function[{Typed[len, "MachineInteger"]},
     Module[{out = ConstantArray[0.0, len + 1, 2], x = 0.0, y = 0.0, i = 1, arg = 0.0},
      While[i <= len,
       arg = RandomReal[{0.0, 6.283185307179586}];
       x = x - Cos[arg];
       y = y + Sin[arg];
       out[[i + 1, 1]] = x;
       out[[i + 1, 2]] = y;
       i = i + 1];
      out]]|}

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let endpoint = function
  | Rtval.Tensor t ->
    let n = (Tensor.dims t).(0) in
    Printf.sprintf "(%.4f, %.4f)"
      (Tensor.get_real t ((n - 1) * 2))
      (Tensor.get_real t (((n - 1) * 2) + 1))
  | v -> Rtval.pp Format.str_formatter v; Format.flush_str_formatter ()

let () =
  Wolfram.init ();
  let len = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 20_000 in
  Printf.printf "random walk, %d steps\n\n" len;

  (* In[1]: interpreted *)
  let interp_fn = Wolfram.interpret_expr (Parser.parse interpreted_src) in
  Rand.seed 42;
  let r1, t1 =
    time (fun () -> Wolfram.interpret_expr (Expr.Normal (interp_fn, [| Expr.Int len |])))
  in
  let last1 = Wolfram.interpret_expr (Expr.apply "Last" [ r1 ]) in
  Printf.printf "In[1] interpreted      %8.1f ms   last point %s\n" (t1 *. 1e3)
    (Form.input_form last1);

  (* In[2]: the legacy bytecode compiler *)
  let bytecode = Wolfram.function_compile ~target:Wolfram.Bytecode (Parser.parse compiled_src) in
  Rand.seed 42;
  let r2, t2 = time (fun () -> Wolfram.call_values bytecode [ Rtval.Int len ]) in
  Printf.printf "In[2] bytecode (WVM)   %8.1f ms   last point %s   (%.1fx)\n"
    (t2 *. 1e3) (endpoint r2) (t1 /. t2);

  (* In[3]: the new compiler *)
  let compiled = Wolfram.function_compile (Parser.parse compiled_src) in
  Rand.seed 42;
  let r3, t3 = time (fun () -> Wolfram.call_values compiled [ Rtval.Int len ]) in
  Printf.printf "In[3] new compiler     %8.1f ms   last point %s   (%.1fx)\n"
    (t3 *. 1e3) (endpoint r3) (t1 /. t3);

  (* In[4]: "plot" — a coarse ASCII rendering instead of ListLinePlot *)
  print_endline "\nIn[4] ListLinePlot (ASCII):";
  (match r3 with
   | Rtval.Tensor t ->
     let n = (Tensor.dims t).(0) in
     let w = 60 and h = 20 in
     let xs = Array.init n (fun i -> Tensor.get_real t (i * 2)) in
     let ys = Array.init n (fun i -> Tensor.get_real t ((i * 2) + 1)) in
     let min_a a = Array.fold_left min a.(0) a and max_a a = Array.fold_left max a.(0) a in
     let x0 = min_a xs and x1 = max_a xs and y0 = min_a ys and y1 = max_a ys in
     let grid = Array.make_matrix h w ' ' in
     Array.iteri
       (fun i x ->
          let px = int_of_float (float (w - 1) *. (x -. x0) /. (x1 -. x0 +. 1e-9)) in
          let py = int_of_float (float (h - 1) *. (ys.(i) -. y0) /. (y1 -. y0 +. 1e-9)) in
          grid.(h - 1 - py).(px) <- '*')
       xs;
     Array.iter (fun row -> print_endline (String.init w (Array.get row))) grid
   | _ -> ());
  Printf.printf
    "\npaper (Fig 1): bytecode-compiled walk ~2x over interpreted at len 100000\n"
