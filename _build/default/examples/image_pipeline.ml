(* A small image-processing pipeline built from compiled kernels — the kind
   of data-oriented workload the paper's introduction motivates.  Each stage
   is a separately compiled function installed into the session; the
   pipeline mixes compiled and interpreted code freely (F1/F9).

     dune exec examples/image_pipeline.exe [n]                              *)

open Wolf_wexpr
open Wolf_runtime

let blur_src = {|
Function[{Typed[img, "PackedArray"["Real64", 2]], Typed[n, "MachineInteger"]},
 Module[{out = img*0.0, i = 2, j = 2},
  While[i < n,
   j = 2;
   While[j < n,
    out[[i, j]] =
      (img[[i-1, j-1]] + 2.0*img[[i-1, j]] + img[[i-1, j+1]]
       + 2.0*img[[i, j-1]] + 4.0*img[[i, j]] + 2.0*img[[i, j+1]]
       + img[[i+1, j-1]] + 2.0*img[[i+1, j]] + img[[i+1, j+1]]) / 16.0;
    j = j + 1];
   i = i + 1];
  out]]|}

(* gradient magnitude (central differences) *)
let gradient_src = {|
Function[{Typed[img, "PackedArray"["Real64", 2]], Typed[n, "MachineInteger"]},
 Module[{out = img*0.0, i = 2, j = 2, gx = 0.0, gy = 0.0},
  While[i < n,
   j = 2;
   While[j < n,
    gx = (img[[i, j+1]] - img[[i, j-1]]) / 2.0;
    gy = (img[[i+1, j]] - img[[i-1, j]]) / 2.0;
    out[[i, j]] = Sqrt[gx*gx + gy*gy];
    j = j + 1];
   i = i + 1];
  out]]|}

(* 16-bin histogram of gradient strength, rescaled into [0, 1) *)
let histogram_src = {|
Function[{Typed[img, "PackedArray"["Real64", 2]], Typed[n, "MachineInteger"]},
 Module[{bins = ConstantArray[0, 16], i = 1, j = 1, b = 0},
  While[i <= n,
   j = 1;
   While[j <= n,
    b = Floor[Clip[img[[i, j]] * 8.0, 0.0, 0.999] * 16.0] + 1;
    bins[[b]] = bins[[b]] + 1;
    j = j + 1];
   i = i + 1];
  bins]]|}

let () =
  Wolfram.init ();
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 256 in
  Printf.printf "synthetic %dx%d image -> blur -> gradient -> histogram\n\n" n n;

  (* synthetic image: a couple of soft blobs plus noise *)
  Rand.seed 2024;
  let img =
    Tensor.create_real [| n; n |]
      (Array.init (n * n) (fun k ->
           let i = float_of_int (k / n) /. float_of_int n in
           let j = float_of_int (k mod n) /. float_of_int n in
           let blob cx cy s =
             exp (-.(((i -. cx) ** 2.) +. ((j -. cy) ** 2.)) /. s)
           in
           min 0.999
             ((0.7 *. blob 0.3 0.4 0.02) +. (0.5 *. blob 0.7 0.6 0.05)
              +. (0.05 *. Rand.uniform ()))))
  in

  let compile name src = Wolfram.function_compile ~name (Parser.parse src) in
  let blur = compile "blur" blur_src in
  let gradient = compile "gradient" gradient_src in
  let histogram = compile "histogram" histogram_src in

  let time name f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    Printf.printf "%-10s %7.2f ms\n%!" name ((Unix.gettimeofday () -. t0) *. 1e3);
    v
  in
  let blurred =
    time "blur" (fun () ->
        Wolfram.call_values blur [ Rtval.Tensor (Tensor.copy img); Rtval.Int n ])
  in
  let edges =
    time "gradient" (fun () -> Wolfram.call_values gradient [ blurred; Rtval.Int n ])
  in
  let bins = time "histogram" (fun () -> Wolfram.call_values histogram [ edges; Rtval.Int n ]) in

  (* interpreted post-processing over compiled results (F1) *)
  (match bins with
   | Rtval.Tensor t ->
     Wolf_kernel.Values.set_own_value (Symbol.intern "edgeBins") (Expr.Tensor t);
     Printf.printf "\nedge-strength histogram (16 bins):\n";
     let counts = Array.init 16 (fun i -> Tensor.get_int t i) in
     let maxc = Array.fold_left max 1 counts in
     Array.iteri
       (fun i c ->
          Printf.printf "%5.2f | %s %d\n" (float_of_int i /. 16.0)
            (String.make (c * 40 / maxc) '#') c)
       counts;
     Printf.printf "\ninterpreted summary: Total = %s, Position of max = %s\n"
       (Form.input_form (Wolfram.interpret "Total[edgeBins]"))
       (Form.input_form (Wolfram.interpret "Position[edgeBins, Max[edgeBins]]"))
   | _ -> ())
