(* Extending the compiler (paper §4.7): user macro rules, user type
   environment declarations (the paper's polymorphic Min example, §4.4),
   and a user-injected IR pass — no compiler internals required.

     dune exec examples/extend_compiler.exe                                 *)

open Wolf_wexpr
open Wolf_compiler

let () =
  Wolfram.init ();

  print_endline "=== user macro rules (the paper's CUDA Map example) ===";
  let menv = Macro.create_env ~parent:(Macro.builtin_env ()) "user-macros" in
  Macro.register menv "Map"
    ~condition:(fun opts ->
        match List.assoc_opt "TargetSystem" opts with
        | Some (Expr.Str "CUDA") -> true
        | _ -> false)
    [ (Parser.parse "Map[f_, lst_]", Parser.parse "CUDAMap[f, lst]") ];
  let show target =
    let expanded =
      Macro.expand menv
        ~options:[ ("TargetSystem", Expr.str target) ]
        (Parser.parse "Map[f, lst]")
    in
    Printf.printf "TargetSystem -> %-5s : Map[f, lst] expands to %s\n" target
      (Form.input_form expanded)
  in
  show "LLVM";
  show "CUDA";

  print_endline "\n=== user type environment: the paper's Min (§4.4) ===";
  let env = Type_env.create ~parent:(Type_env.builtin ()) "user-types" in
  (* tyEnv["declareFunction", MyMin,
       Typed[TypeForAll[{"a"}, {Element["a", "Ordered"]}, {"a","a"} -> "a"]]@
         Function[{e1, e2}, If[e1 < e2, e1, e2]] *)
  Type_env.declare_wolfram env "MyMin"
    ~spec:(Parser.parse {|TypeForAll[{"a"}, {Element["a", "Ordered"]}, {"a", "a"} -> "a"]|})
    ~body:(Parser.parse "Function[{e1, e2}, If[e1 < e2, e1, e2]]");
  (* and the container form, folding the scalar definition *)
  Type_env.declare_wolfram env "MyMinVec"
    ~spec:(Parser.parse
             {|TypeForAll[{"a"}, {Element["a", "Ordered"]},
                {"PackedArray"["a", 1]} -> "a"]|})
    ~body:(Parser.parse
             {|Function[{arry},
                Module[{m = arry[[1]], i = 2, n = Length[arry]},
                 While[i <= n, m = MyMin[m, arry[[i]]]; i = i + 1];
                 m]]|});
  let run name src args =
    let cf = Wolfram.function_compile ~type_env:env ~macro_env:menv ~name (Parser.parse src) in
    Printf.printf "%-36s = %s\n" name (Form.input_form (Wolfram.call cf args))
  in
  run "MyMin instantiated at Integer64"
    {|Function[{Typed[a, "MachineInteger"], Typed[b, "MachineInteger"]}, MyMin[a, b]]|}
    [ Expr.Int 7; Expr.Int 3 ];
  run "MyMin instantiated at Real64"
    {|Function[{Typed[a, "Real64"], Typed[b, "Real64"]}, MyMin[a, b]]|}
    [ Expr.Real 1.5; Expr.Real 0.25 ];
  run "MyMinVec over a packed array"
    {|Function[{Typed[v, "PackedArray"["Integer64", 1]]}, MyMinVec[v]]|}
    [ Parser.parse "{9, 4, 7, 2, 8}" ];
  (* the qualifier rejects unordered types at compile time *)
  (match
     Wolfram.function_compile ~type_env:env ~name:"bad"
       (Parser.parse {|Function[{Typed[a, "Expression"]}, MyMin[a, a]]|})
   with
   | _ -> print_endline "UNEXPECTED: Expression passed the Ordered qualifier"
   | exception Wolf_base.Errors.Compile_error msg ->
     Printf.printf "qualifier rejection: %s\n"
       (String.concat " " (String.split_on_char '\n' msg)));

  print_endline "\n=== user-injected IR pass (§4.7) ===";
  let calls = ref [] in
  let census =
    { Pipeline.pass_name = "call-census";
      pass_run =
        (fun prog ->
           List.iter
             (fun f ->
                List.iter
                  (fun (b : Wir.block) ->
                     List.iter
                       (function
                         | Wir.Call { callee = Wir.Resolved { mangled; _ }; _ } ->
                           calls := mangled :: !calls
                         | _ -> ())
                       b.Wir.instrs)
                  f.Wir.blocks)
             prog.Wir.funcs) }
  in
  let _ =
    Pipeline.compile ~user_passes:[ census ] ~name:"censused"
      (Parser.parse
         {|Function[{Typed[x, "Real64"]}, Sin[x]*Sin[x] + Cos[x]]|})
  in
  Printf.printf "resolved primitive calls seen by the user pass:\n";
  List.iter (Printf.printf "  %s\n") (List.sort_uniq compare !calls)
