(* Quickstart: the paper's cfib walk-through (§4.1) end to end.

     dune exec examples/quickstart.exe

   Compiles the recursive Fibonacci-style function with FunctionCompile,
   installs it into the interpreter, inspects the intermediate
   representations, and demonstrates the soft numerical failure mode. *)

open Wolf_wexpr

let banner title = Printf.printf "\n=== %s ===\n%!" title

let () =
  Wolfram.init ();

  banner "In[1]: define and compile cfib (paper §4.1)";
  let src =
    {|Function[{Typed[n, "MachineInteger"]}, If[n < 1, 1, cfib[n-1] + cfib[n-2]]]|}
  in
  print_endline src;
  let cfib =
    Wolfram.function_compile
      ~options:{ Wolf_compiler.Options.default with self_name = Some "cfib" }
      ~name:"cfib" (Parser.parse src)
  in
  Printf.printf "cfib[20]  = %s\n" (Form.input_form (Wolfram.call cfib [ Expr.Int 20 ]));
  Printf.printf "cfib[30]  = %s\n" (Form.input_form (Wolfram.call cfib [ Expr.Int 30 ]));

  banner "interpreter integration (F1)";
  Wolfram.install "cfib" cfib;
  (* the interpreter now calls compiled code transparently *)
  Printf.printf "Total[Map[cfib, {5, 10, 15}]] = %s\n"
    (Form.input_form (Wolfram.interpret "Total[Map[cfib, {5, 10, 15}]]"));

  banner "soft numerical failure (F2)";
  (* an iterative factorial overflows machine integers at 21! and reverts to
     the interpreter, which computes the exact result with big integers *)
  let fact =
    Wolfram.function_compile ~name:"cfact"
      (Parser.parse
         {|Function[{Typed[n, "MachineInteger"]},
            Module[{acc = 1, i = 1}, While[i <= n, acc = acc*i; i = i + 1]; acc]]|})
  in
  Printf.printf "cfact[20] = %s   (machine integers)\n"
    (Form.input_form (Wolfram.call fact [ Expr.Int 20 ]));
  Printf.printf "cfact[25] = %s   (exact, via fallback)\n"
    (Form.input_form (Wolfram.call fact [ Expr.Int 25 ]));
  Printf.printf "fallbacks so far: %d\n" (Wolfram.fallback_count fact);

  banner "abortable evaluation (F3)";
  let spin =
    Wolfram.function_compile ~name:"spin"
      (Parser.parse
         {|Function[{Typed[n, "MachineInteger"]},
            Module[{i = 0}, While[i < n, i = i + 1]; i]]|})
  in
  Wolf_base.Abort_signal.abort_after 1000;
  (match Wolfram.call_values spin [ Wolf_runtime.Rtval.Int max_int ] with
   | _ -> print_endline "loop finished?!"
   | exception Wolf_base.Abort_signal.Aborted ->
     print_endline "infinite loop aborted; the session lives on");
  Wolf_base.Abort_signal.clear ();

  banner "intermediate representations (artifact appendix A.6)";
  let add_one = {|Function[{Typed[arg, "MachineInteger"]}, arg + 1]|} in
  Printf.printf "CompileToAST:\n%s\n\n" (Wolfram.compile_to_ast add_one);
  Printf.printf "CompileToIR (typed, optimised):\n%s\n"
    (Wolfram.compile_to_ir add_one);

  banner "standalone export (F10)";
  (match Wolfram.export_string ~format:`C add_one with
   | Ok c ->
     let preview = String.split_on_char '\n' c in
     let tail = List.filteri (fun i _ -> i >= List.length preview - 12) preview in
     Printf.printf "C export (last lines):\n%s\n" (String.concat "\n" tail)
   | Error e -> Printf.printf "C export failed: %s\n" e);
  print_endline "\ndone."
