examples/symbolic_root.ml: Expr Form List Parser Printf String Unix Wolf_runtime Wolf_wexpr Wolfram
