examples/extend_compiler.ml: Expr Form List Macro Parser Pipeline Printf String Type_env Wir Wolf_base Wolf_compiler Wolf_wexpr Wolfram
