examples/quickstart.ml: Expr Form List Parser Printf String Wolf_base Wolf_compiler Wolf_runtime Wolf_wexpr Wolfram
