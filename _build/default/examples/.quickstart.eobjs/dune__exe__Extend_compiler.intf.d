examples/extend_compiler.mli:
