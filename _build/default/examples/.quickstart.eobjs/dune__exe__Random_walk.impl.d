examples/random_walk.ml: Array Expr Form Format Parser Printf Rand Rtval String Sys Tensor Unix Wolf_runtime Wolf_wexpr Wolfram
