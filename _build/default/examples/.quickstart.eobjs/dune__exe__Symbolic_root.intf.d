examples/symbolic_root.mli:
