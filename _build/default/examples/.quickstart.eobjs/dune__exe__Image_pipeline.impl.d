examples/image_pipeline.ml: Array Expr Form Parser Printf Rand Rtval String Symbol Sys Tensor Unix Wolf_kernel Wolf_runtime Wolf_wexpr Wolfram
