examples/quickstart.mli:
