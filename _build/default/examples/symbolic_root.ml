(* Symbolic computation in compiled code (F8) and auto-compilation inside
   numerical solvers (the paper's FindRoot example, §1 and §4.5).

     dune exec examples/symbolic_root.exe                                   *)

open Wolf_wexpr

let () =
  Wolfram.init ();

  print_endline "=== compiled symbolic computation (F8) ===";
  (* the paper's example: a compiled function over "Expression" values *)
  let cf =
    Wolfram.function_compile ~name:"symPlus"
      (Parser.parse
         {|Function[{Typed[arg1, "Expression"], Typed[arg2, "Expression"]}, arg1 + arg2]|})
  in
  let show args =
    Printf.printf "cf[%s] = %s\n"
      (String.concat ", " (List.map Form.input_form args))
      (Form.input_form (Wolfram.call cf args))
  in
  show [ Expr.Int 1; Expr.Int 2 ];
  show [ Expr.sym "x"; Expr.sym "y" ];
  show [ Expr.sym "x"; Parser.parse "Cos[y] + Sin[z]" ];

  print_endline "\n=== symbolic differentiation feeding Newton's method ===";
  let eq = "Sin[x] + E^x" in
  Printf.printf "equation      f  = %s\n" eq;
  Printf.printf "derivative    f' = %s\n"
    (Form.input_form (Wolfram.interpret ("D[" ^ eq ^ ", x] /. x -> xx")));

  print_endline "\n=== FindRoot with and without auto-compilation (E4) ===";
  let solve () = Wolfram.interpret ("FindRoot[" ^ eq ^ ", {x, 0}]") in
  let time n f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do ignore (f ()) done;
    (Unix.gettimeofday () -. t0) /. float n *. 1e6
  in
  Wolf_runtime.Hooks.auto_compile_enabled := false;
  ignore (solve ());
  let t_interp = time 500 solve in
  Wolf_runtime.Hooks.auto_compile_enabled := true;
  ignore (solve ());
  let t_auto = time 500 solve in
  Printf.printf "root            = %s   (paper: x ~ -0.588533)\n"
    (Form.input_form (solve ()));
  Printf.printf "interpreted     = %.1f us/solve\n" t_interp;
  Printf.printf "auto-compiled   = %.1f us/solve  (%.2fx; paper: 1.6x)\n"
    t_auto (t_interp /. t_auto)
