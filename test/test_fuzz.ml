(* Fuzzing subsystem tests: replay the checked-in corpus differentially on
   the fast backends, exercise the regression reproducers on the JIT too,
   and check the shrinker's contract with qcheck. *)

open Wolf_fuzz

let corpus_dir = "corpus"

let entries = lazy (Driver.read_corpus_dir corpus_dir)

let failure_str f =
  Printf.sprintf "%s: expected %s, got %s" f.Oracle.fwhere f.Oracle.fexpected
    f.Oracle.fgot

let check_clean ?backends ?levels entry =
  match Driver.check_entry ?backends ?levels entry with
  | [] -> ()
  | fs ->
    Alcotest.failf "%s (%s): %s" entry.Driver.ce_path entry.Driver.ce_note
      (String.concat "; " (List.map failure_str fs))

let test_corpus_present () =
  let n = List.length (Lazy.force entries) in
  Alcotest.(check bool)
    (Printf.sprintf "corpus has >= 10 programs (found %d)" n)
    true (n >= 10)

(* every corpus program, interpreter vs threaded O0/O1/O2 and WVM (where
   representable), plus abort injection *)
let test_corpus_replay () =
  List.iter check_clean (Lazy.force entries)

(* the shrunk miscompilation reproducers additionally run on the JIT, which
   shells out to ocamlopt and is therefore kept off the full-corpus sweep *)
let test_regressions_on_jit () =
  Lazy.force entries
  |> List.filter (fun e ->
      String.length (Filename.basename e.Driver.ce_path) >= 7
      && String.sub (Filename.basename e.Driver.ce_path) 0 7 = "regress")
  |> List.iter (fun e ->
      check_clean ~backends:[ Oracle.Jit ] ~levels:[ 1; 2 ] e)

(* the par arm is the only one that calls a single compiled function more
   than once, so it alone catches state leaking across calls (e.g. the
   pooled-constant mutation regression) *)
let test_regressions_on_par () =
  Lazy.force entries
  |> List.filter (fun e ->
      String.length (Filename.basename e.Driver.ce_path) >= 7
      && String.sub (Filename.basename e.Driver.ce_path) 0 7 = "regress")
  |> List.iter (fun e ->
      check_clean ~backends:[ Oracle.Par ] ~levels:[ 1; 2 ] e)

(* the wolfc-build product: regression reproducers replayed end-to-end as
   standalone executables (emit_standalone + cc + argv); the oracle skips
   entries whose shapes the standalone driver cannot parse or print, and
   the whole arm self-skips without a C toolchain *)
let test_regressions_on_binary () =
  Lazy.force entries
  |> List.filter (fun e ->
      String.length (Filename.basename e.Driver.ce_path) >= 7
      && String.sub (Filename.basename e.Driver.ce_path) 0 7 = "regress")
  |> List.iter (fun e ->
      check_clean ~backends:[ Oracle.Binary ] ~levels:[ 0; 2 ] e)

(* ---- shrinker properties --------------------------------------------- *)

let gen_case seed =
  Gen.case ~config:{ Gen.max_size = 40; strings = true } (Rng.create seed)

let arb_seed = QCheck.int_range 0 100_000

(* a deterministic pseudo-arbitrary predicate over programs: roughly half of
   all generated cases "fail", with no structure the shrinker could exploit *)
let hash_fails c = Hashtbl.hash (Ast.to_source c.Ast.fn) land 1 = 0

let prop_failure_preserving =
  QCheck.Test.make ~count:300 ~name:"shrink preserves the failure predicate"
    arb_seed (fun seed ->
      let case = gen_case seed in
      QCheck.assume (hash_fails case);
      hash_fails (Shrink.shrink ~fails:hash_fails case))

let prop_non_growing =
  QCheck.Test.make ~count:300 ~name:"shrink never grows the measure"
    arb_seed (fun seed ->
      let case = gen_case seed in
      Shrink.measure (Shrink.shrink ~fails:hash_fails case)
      <= Shrink.measure case)

let prop_fixpoint =
  QCheck.Test.make ~count:100 ~name:"shrink is a fixpoint (idempotent)"
    arb_seed (fun seed ->
      let case = gen_case seed in
      let once = Shrink.shrink ~fails:hash_fails case in
      Shrink.measure (Shrink.shrink ~fails:hash_fails once)
      = Shrink.measure once)

let prop_trivial_predicate_minimises =
  QCheck.Test.make ~count:100
    ~name:"an always-true predicate shrinks to a near-empty program"
    arb_seed (fun seed ->
      let case = gen_case seed in
      let small = Shrink.shrink ~fails:(fun _ -> true) case in
      Ast.size small.Ast.fn <= 4)

(* every one-step candidate strictly decreases the measure when accepted:
   the shrinker's termination argument, probed via the greedy chain length *)
let prop_candidates_same_type =
  QCheck.Test.make ~count:100
    ~name:"candidates preserve the result type"
    arb_seed (fun seed ->
      let case = gen_case seed in
      List.for_all
        (fun c ->
           c.Ast.fn.Ast.ret = case.Ast.fn.Ast.ret
           && Ast.expr_ty c.Ast.fn.Ast.result = case.Ast.fn.Ast.ret)
        (Shrink.candidates case))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_failure_preserving;
      prop_non_growing;
      prop_fixpoint;
      prop_trivial_predicate_minimises;
      prop_candidates_same_type ]

let tests =
  [ Alcotest.test_case "corpus present" `Quick test_corpus_present;
    Alcotest.test_case "corpus replay (threaded+wvm, O0-O2, abort)" `Slow
      test_corpus_replay;
    Alcotest.test_case "regressions on jit" `Slow test_regressions_on_jit;
    Alcotest.test_case "regressions on par (repeated calls)" `Quick
      test_regressions_on_par;
    Alcotest.test_case "regressions as built binaries" `Slow
      test_regressions_on_binary ]
  @ qcheck_tests
