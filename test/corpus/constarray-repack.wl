(* repeated whole-array reassignment with changing lengths, then a clamped *)
(* indexed store whose value reads the array being updated *)
(* args: {9, 7, 4.625} *)
Function[{Typed[p1, "MachineInteger"], Typed[p2, "MachineInteger"], Typed[p3, "Real64"]},
 Module[{m1 = ConstantArray[(-2), 5]},
 m1 = {9, 2, -1, 4};
 m1 = {-7};
 m1 = ConstantArray[(p1 * (-5)), 3];
 m1[[1 + Mod[Quotient[p1, p1], Length[m1]]]] = Max[Total[m1], p2];
 ConstantArray[If[True, p2, (-5)], 5]]]
