(* regression: swap-shaped loop-carried pair; jump-argument copies must be parallel *)
(* args: {6} *)
Function[{Typed[n, "MachineInteger"]},
 Module[{a = 1, b = 2, t = 0, c = 1},
  While[c <= n,
   t = a;
   a = b;
   b = t;
   c = c + 1];
  a*100 + b]]
