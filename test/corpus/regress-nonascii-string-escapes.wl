(* regression: non-ASCII string bytes followed by digits; decimal escapes corrupt them *)
(* args: {"caf√©"} *)
(* wvm: false *)
Function[{Typed[s, "String"]},
 Total[ToCharacterCode[s <> "È123"]]]
