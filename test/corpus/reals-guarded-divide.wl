(* real arithmetic: guarded division, Sqrt[Abs[...]], branchy Do body *)
(* args: {(-7.375)} *)
Function[{Typed[p1, "Real64"]},
 Module[{m1 = p1},
 If[EvenQ[(5 * (-3))],
  m1 = Sqrt[Abs[(m1 - m1)]];
  m1 = If[((-2) != (-8)), m1, (p1 / (0.5 + Abs[5.5]))]];
 Do[
  If[((p1 / (0.5 + Abs[5.5])) < m1),
   m1 = (Sqrt[Abs[p1]] + (p1 / (0.5 + Abs[p1]))),
   m1 = ((-5.25) - p1)];
  m1 = ((m1 / (0.5 + Abs[7.25])) * If[True, p1, m1]),
  {d1, 1}];
 m1 = ((-6.25) * (m1 + 5.125));
 m1 = (-6.75);
 ((p1 - p1) * (p1 - m1))]]
