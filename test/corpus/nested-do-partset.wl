(* nested Do loops writing through clamped Part into a Reverse'd With copy *)
(* args: {True, 0} *)
Function[{Typed[p1, "Boolean"], Typed[p2, "MachineInteger"]},
 With[{w1 = Reverse[{5}], w2 = (1.625 / (0.5 + Abs[7.5]))}, Module[{m1 = Reverse[w1], m2 = Total[w1], m3 = (p2 + p2)},
 m1[[1 + Mod[(5 - p2), Length[m1]]]] = p2;
 Do[
  Do[
   m1[[1 + Mod[Abs[p2], Length[m1]]]] = m2;
   m3 = Length[w1],
   {d2, 4}],
  {d1, 5}];
 Reverse[ConstantArray[m2, 1]]]]]
