(* regression: Tensor.ensure_unique consumed the caller's claim while the *)
(* paired MemoryRelease (or the symbol store's forget) released it again, so *)
(* a shared array's refcount decayed by one per loop iteration until the *)
(* third indexed update mutated the alias in place (all backends and the *)
(* interpreter, fuzz seed 42 program 290) *)
(* args: {} *)
Function[{},
 Module[{m1 = {0}, m2 = ConstantArray[(-9), 4], c1 = 1},
 While[c1 <= 5,
  m1 = m2;
  m1[[1 + Mod[0, Length[m1]]]] = 0;
  c1 = c1 + 1];
 m2]]
