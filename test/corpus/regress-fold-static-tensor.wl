(* regression: opt_fold propagated a tensor (Cexpr) constant through a Copy *)
(* chain, so part_set and Return shared one static tensor and the in-place *)
(* update corrupted the returned value (threaded/jit O1+, fuzz seed 42) *)
(* args: {} *)
Function[{},
 Module[{m2 = {0}, m3 = {1}},
 m2 = m3;
 m2[[1]] = 0;
 m3]]
