(* clamped Part read with a negative modulus operand *)
(* args: {{-3}, (-7)} *)
Function[{Typed[p1, "PackedArray"["Integer64", 1]], Typed[p2, "MachineInteger"]},
 Module[{m1 = Length[p1]},
 m1 = ((-9) + If[False, p2, p2]);
 Max[(m1 - p2), p1[[1 + Mod[m1, Length[p1]]]]]]]
