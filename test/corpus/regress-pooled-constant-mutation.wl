(* pooled compiled constants must COW on Part-store: call 2 of the same compiled function read a corrupted {0,7,3} and returned {0,0,3} *)
(* args: {} *)
Function[{},
 Module[{m3 = {5, 7, 3}},
  m3[[1 + Mod[Total[m3], Length[m3]]]] = 0;
  m3]]
