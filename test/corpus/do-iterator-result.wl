(* the Do iterator escapes into a mutable local that is the result *)
(* args: {(-5.875), {-7, 1, 6, -6, -5}} *)
Function[{Typed[p1, "Real64"], Typed[p3, "PackedArray"["Integer64", 1]]},
 Module[{m1 = Total[p3]},
 Do[
  m1 = Total[p3];
  m1 = d1,
  {d1, 4}];
 m1]]
