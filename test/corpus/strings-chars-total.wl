(* string operations: StringLength, StringJoin, ToCharacterCode totals *)
(* args: {"a", (-1), 9} *)
(* wvm: false *)
Function[{Typed[p1, "String"], Typed[p2, "MachineInteger"], Typed[p3, "MachineInteger"]},
 With[{w1 = If[False, p3, (-8)], w2 = 0.5}, Module[{m1 = StringLength["ok"], m2 = Mod[w1, p3], m3 = StringLength[p1], c1 = 1},
 m2 = Max[StringLength[p1], (4 * m3)];
 If[(w2 > (w2 + 0.875)),
  m3 = ((-3) * ((-2) * m1));
  While[c1 <= 4,
   m2 = (-(-2));
   m3 = (m3 + (-5));
   c1 = c1 + 1]];
 m3 = Total[ToCharacterCode[p1]];
 (If[False, (-5), p3] - m1)]]]
