(* loop-carried scalar fed by clamped Part reads in doubly nested While *)
(* args: {0.5, (-4), {-6, -2, 1, 1, -6, 5}} *)
Function[{Typed[p1, "Real64"], Typed[p2, "MachineInteger"], Typed[p3, "PackedArray"["Integer64", 1]]},
 Module[{m1 = Max[p2, p2], m2 = (p1 * p1), m3 = p2, c2 = 1, c3 = 1},
 Do[
  m1 = Mod[p2, Total[p3]];
  m1 = (-2),
  {d1, 5}];
 While[c2 <= 2,
  While[c3 <= 4,
   m3 = (p3[[1 + Mod[m1, Length[p3]]]] + p3[[1 + Mod[p2, Length[p3]]]]);
   c3 = c3 + 1];
  c2 = c2 + 1];
 (p3[[1 + Mod[p2, Length[p3]]]] * (p2 * m1))]]
