(* machine-integer overflow: compiled code raises and the runtime falls back *)
(* to uncompiled evaluation, which must agree with the reference (F2) *)
(* args: {3037000500} *)
Function[{Typed[p1, "MachineInteger"]},
 Module[{m1 = 1},
 m1 = (p1 * p1);
 m1 = (m1 + 1);
 m1]]
