(* boolean results through short-circuit operators inside While/Do nesting *)
(* args: {8, 2} *)
Function[{Typed[p1, "MachineInteger"], Typed[p2, "MachineInteger"]},
 Module[{m1 = EvenQ[p2], c1 = 1},
 m1 = (p2 != (p1 - p2));
 m1 = (m1 || EvenQ[5]);
 While[c1 <= 1,
  Do[
   m1 = EvenQ[Max[1, 8]];
   m1 = (((-5) >= p2) && EvenQ[p1]),
   {d2, 4}];
  If[EvenQ[Total[{-7}]],
   m1 = Not[m1]];
  c1 = c1 + 1];
 m1 = (Max[p2, p1] > (p2 - p2));
 (((-7.25) > (-3.375)) && (0.125 <= 2.875))]]
