(* Mod by zero: a runtime failure in compiled code must soft-fail back to *)
(* the interpreter rather than disagree or crash (F2) *)
(* args: {5, 0} *)
Function[{Typed[p1, "MachineInteger"], Typed[p2, "MachineInteger"]},
 Module[{m1 = 0},
 m1 = Mod[p1, p2];
 m1 = (m1 + 1);
 m1]]
