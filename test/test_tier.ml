(* Tiered adaptive execution + persistent disk cache tests: promotion
   lifecycle (heat from invocations and loop backedges), atomic closure
   publication under a slow compile, failure/abort handling on the
   promotion path, a qcheck property interleaving tier-0 evaluation,
   background promotion and Abort[] injection, and the on-disk layer
   (round-trip, crash safety via an injected fault before the publishing
   rename, corrupt-entry handling, eviction, cross-handle reuse, and the
   facade wiring).  Also the two satellite regressions: repeated calls
   consult the compile cache once, and the background pool exports a
   metrics source. *)

open Wolf_wexpr
module Tier = Wolfram.Tier
module DC = Wolf_compiler.Disk_cache
module A = Wolf_base.Abort_signal

let parse = Parser.parse

(* sum of i^2, with a Do loop so every call contributes backedges *)
let sum_src =
  "Function[{Typed[n, \"MachineInteger\"]}, \
   Module[{s = 0}, Do[s = s + i*i, {i, 1, n}]; s]]"

let sum_sq n = n * (n + 1) * (2 * n + 1) / 6

let expect_int what e =
  match e with
  | Expr.Int n -> n
  | e -> Alcotest.failf "%s: expected an integer, got %s" what (Expr.to_string e)

let until ?(timeout = 10.0) ?(what = "condition") pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Promotion lifecycle                                                  *)

let test_promotion_lifecycle () =
  Wolfram.init ();
  let cf =
    Wolfram.tiered ~threshold:4 ~promote_target:Wolfram.Threaded
      ~name:"t_life" (parse sum_src)
  in
  let t = Option.get (Wolfram.tier_of cf) in
  Alcotest.(check string) "starts cold" "cold" (Tier.state_name (Tier.state t));
  Alcotest.(check int) "tier-0 result" (sum_sq 10)
    (expect_int "first call" (Wolfram.call cf [ Expr.Int 10 ]));
  for _ = 2 to 8 do ignore (Wolfram.call cf [ Expr.Int 10 ]) done;
  (match Tier.await_promotion t with
   | Tier.Promoted -> ()
   | s -> Alcotest.failf "promotion ended %s" (Tier.state_name s));
  Alcotest.(check int) "promoted result equals tier-0 result" (sum_sq 10)
    (expect_int "promoted call" (Wolfram.call cf [ Expr.Int 10 ]));
  Alcotest.(check bool) "promoted_at recorded" true
    (Tier.promoted_at t <> None);
  Alcotest.(check bool) "heat crossed the threshold" true (Tier.heat t >= 4)

(* one long call must promote about as fast as many short ones: loop
   backedges (abort-poll delta) count toward heat, so a single hot call
   with a 10⁴-iteration loop crosses a threshold of 50 alone *)
let test_backedge_heat () =
  let cf =
    Wolfram.tiered ~threshold:50 ~promote_target:Wolfram.Threaded
      ~name:"t_backedge" (parse sum_src)
  in
  let t = Option.get (Wolfram.tier_of cf) in
  ignore (Wolfram.call cf [ Expr.Int 10_000 ]);
  Alcotest.(check int) "one invocation" 1 (Tier.calls t);
  Alcotest.(check bool) "backedges alone heated past the threshold" true
    (Tier.heat t >= 50);
  match Tier.await_promotion t with
  | Tier.Promoted -> ()
  | s -> Alcotest.failf "promotion ended %s" (Tier.state_name s)

(* the closure slot is read once per call: while a slow promote is in
   flight every call keeps interpreting and returns the right value; after
   publication new calls run the compiled closure *)
let test_publication_hot_swap () =
  let fexpr = parse sum_src in
  let promoted_calls = Atomic.make 0 in
  let t =
    Tier.create ~threshold:1 ~name:"t_swap" ~source:fexpr
      ~promote:(fun () ->
          Thread.delay 0.05;
          fun args ->
            Atomic.incr promoted_calls;
            Wolfram.interpret_expr (Expr.Normal (fexpr, args)))
      ()
  in
  for i = 1 to 100 do
    let r = expect_int "during promotion" (Tier.call t [| Expr.Int 10 |]) in
    if r <> sum_sq 10 then Alcotest.failf "call %d returned %d" i r
  done;
  (match Tier.force_promote t with
   | Tier.Promoted -> ()
   | s -> Alcotest.failf "promotion ended %s" (Tier.state_name s));
  Alcotest.(check int) "post-swap result" (sum_sq 10)
    (expect_int "after promotion" (Tier.call t [| Expr.Int 10 |]));
  Alcotest.(check bool) "compiled closure took over" true
    (Atomic.get promoted_calls >= 1)

let test_failed_promotion_interprets () =
  let fexpr = parse sum_src in
  let t =
    Tier.create ~threshold:1 ~name:"t_fail" ~source:fexpr
      ~promote:(fun () -> failwith "toolchain exploded") ()
  in
  for _ = 1 to 3 do ignore (Tier.call t [| Expr.Int 5 |]) done;
  (match Tier.await_promotion t with
   | Tier.Failed -> ()
   | s -> Alcotest.failf "expected failed, got %s" (Tier.state_name s));
  Alcotest.(check int) "keeps interpreting after a failed compile"
    (sum_sq 5) (expect_int "post-failure call" (Tier.call t [| Expr.Int 5 |]))

(* a compile killed by a stray in-flight Abort[] is the caller's program
   racing the promotion, not a compile bug: reset to cold and retry *)
let test_abort_during_compile_retries () =
  let fexpr = parse sum_src in
  let attempts = Atomic.make 0 in
  let t =
    Tier.create ~threshold:1 ~name:"t_retry" ~source:fexpr
      ~promote:(fun () ->
          if Atomic.fetch_and_add attempts 1 = 0 then raise A.Aborted;
          fun args -> Wolfram.interpret_expr (Expr.Normal (fexpr, args)))
      ()
  in
  ignore (Tier.call t [| Expr.Int 5 |]);
  until ~what:"first (aborted) promotion attempt"
    (fun () -> Atomic.get attempts >= 1 && Tier.state t <> Tier.Queued);
  Alcotest.(check string) "aborted compile resets to cold" "cold"
    (Tier.state_name (Tier.state t));
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Tier.state t <> Tier.Promoted && Unix.gettimeofday () < deadline do
    ignore (Tier.call t [| Expr.Int 5 |]);
    Thread.delay 0.005
  done;
  Alcotest.(check string) "second attempt promotes" "promoted"
    (Tier.state_name (Tier.state t));
  Alcotest.(check int) "exactly one retry" 2 (Atomic.get attempts)

(* ------------------------------------------------------------------ *)
(* qcheck: tier-0 eval x background promotion x Abort[] at random points *)

let loop_src =
  "Function[{Typed[n, \"MachineInteger\"]}, \
   Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]"

let qcheck_interleave =
  QCheck.Test.make ~count:30
    ~name:"tier-0 x promotion x Abort[]: agreement, no leaked flags"
    QCheck.(pair (int_range 1 60) (int_range 0 6))
    (fun (k, pre_calls) ->
       let fexpr = parse loop_src in
       let cf =
         Wolfram.tiered ~threshold:1 ~promote_target:Wolfram.Threaded
           ~name:"t_prop" fexpr
       in
       let t = Option.get (Wolfram.tier_of cf) in
       let args = [ Expr.Int 9 ] in
       let expected = 45 in
       (* heat up: 0-6 clean calls race the background promotion *)
       for _ = 1 to pre_calls do ignore (Wolfram.call cf args) done;
       (* inject an abort after k polls: the call may complete or raise
          Aborted, and may race the background compile either way *)
       A.clear ();
       A.abort_after k;
       let aborted_call =
         Fun.protect ~finally:A.clear (fun () ->
             match Wolfram.call cf args with
             | e -> Some (expect_int "call under abort" e)
             | exception A.Aborted -> None)
       in
       (match aborted_call with
        | Some v when v <> expected ->
          QCheck.Test.fail_reportf "call under abort returned %d" v
        | _ -> ());
       (* settle the race deterministically, then the promoted (or, after
          an abort-killed compile, interpreted) closure must agree *)
       ignore (Tier.force_promote t);
       let post = expect_int "post call" (Wolfram.call cf args) in
       if A.requested () then
         QCheck.Test.fail_report "abort flag leaked past the tier machinery";
       if post <> expected then
         QCheck.Test.fail_reportf "post-promotion call returned %d" post;
       true)

(* ------------------------------------------------------------------ *)
(* Disk cache                                                           *)

let with_dc ?budget_bytes f =
  let dir = Filename.temp_file "wolf_dc" "" in
  Sys.remove dir;
  let dc = DC.open_dir ?budget_bytes dir in
  Fun.protect ~finally:(fun () -> ignore (DC.clear dc)) (fun () -> f dc)

let test_disk_roundtrip () =
  with_dc @@ fun dc ->
  DC.store dc ~key:"k1" ~kind:"jit" "payload-one";
  Alcotest.(check (option string)) "hit returns the payload"
    (Some "payload-one") (DC.load dc ~key:"k1" ~kind:"jit");
  Alcotest.(check (option string)) "other kind is a miss" None
    (DC.load dc ~key:"k1" ~kind:"wvm");
  let s = DC.stats dc in
  Alcotest.(check int) "writes" 1 s.DC.writes;
  Alcotest.(check int) "hits" 1 s.DC.hits;
  Alcotest.(check int) "misses" 1 s.DC.misses;
  Alcotest.(check int) "lookups = hits + misses" s.DC.lookups
    (s.DC.hits + s.DC.misses);
  Alcotest.(check int) "one live entry" 1 s.DC.entries

(* a writer killed between the temp write and the publishing rename must
   leave readers with the old entry or a clean miss — never a torn file *)
let test_disk_crash_safety () =
  with_dc @@ fun dc ->
  DC.store dc ~key:"settled" ~kind:"jit" "v1";
  DC.fault_before_rename := (fun () -> failwith "writer killed mid-publish");
  Fun.protect
    ~finally:(fun () -> DC.fault_before_rename := (fun () -> ()))
    (fun () ->
       DC.store dc ~key:"settled" ~kind:"jit" "v2-must-not-publish";
       DC.store dc ~key:"fresh" ~kind:"jit" "torn?");
  Alcotest.(check (option string)) "overwrite crash: reader sees old entry"
    (Some "v1") (DC.load dc ~key:"settled" ~kind:"jit");
  Alcotest.(check (option string)) "fresh-key crash: clean miss" None
    (DC.load dc ~key:"fresh" ~kind:"jit");
  let intact, problems = DC.verify dc in
  Alcotest.(check int) "the settled entry is intact" 1 intact;
  Alcotest.(check (list (pair string string))) "no torn entries on disk" []
    problems;
  Alcotest.(check bool) "failed publishes counted as errors" true
    ((DC.stats dc).DC.errors >= 2)

let test_disk_corrupt_entry () =
  with_dc @@ fun dc ->
  DC.store dc ~key:"kc" ~kind:"jit" "trustworthy bytes";
  (* smash the artifact on disk behind the cache's back *)
  let objects = Filename.concat (DC.dir dc) "objects" in
  let smashed = ref 0 in
  Array.iter
    (fun shard ->
       let sd = Filename.concat objects shard in
       if Sys.is_directory sd then
         Array.iter
           (fun f ->
              let oc = open_out (Filename.concat sd f) in
              output_string oc "garbage";
              close_out oc;
              incr smashed)
           (Sys.readdir sd))
    (Sys.readdir objects);
  Alcotest.(check int) "found the artifact to corrupt" 1 !smashed;
  Alcotest.(check (option string)) "corrupt entry reads as a miss" None
    (DC.load dc ~key:"kc" ~kind:"jit");
  Alcotest.(check bool) "corruption counted" true ((DC.stats dc).DC.errors >= 1);
  Alcotest.(check int) "corrupt entry deleted on sight" 0
    (DC.stats dc).DC.entries

let test_disk_eviction () =
  with_dc ~budget_bytes:600 @@ fun dc ->
  for i = 1 to 8 do
    DC.store dc ~key:(Printf.sprintf "k%d" i) ~kind:"jit" (String.make 200 'x')
  done;
  let s = DC.stats dc in
  Alcotest.(check bool) "evicted down toward the budget" true
    (s.DC.evictions > 0 && s.DC.entries < 8);
  Alcotest.(check bool) "stayed near the byte budget" true (s.DC.bytes <= 800)

let test_disk_second_handle () =
  with_dc @@ fun dc ->
  DC.store dc ~key:"shared" ~kind:"jit" "written by handle A";
  (* a second handle on the same directory (same binary: the exe-digest
     guard admits the entry) models a second wolfc process warming up *)
  let dc2 = DC.open_dir (DC.dir dc) in
  Alcotest.(check (option string)) "handle B hits handle A's entry"
    (Some "written by handle A") (DC.load dc2 ~key:"shared" ~kind:"jit");
  let s = DC.stats dc2 in
  Alcotest.(check int) "clean reuse: no misses on handle B" 0 s.DC.misses

(* facade wiring: a cacheable compile publishes to the attached disk
   cache, and once the in-memory layer is dropped the next compile is a
   disk hit that skips the whole pipeline *)
let test_disk_facade_wiring () =
  with_dc @@ fun dc ->
  Wolfram.set_disk_cache (Some dc);
  Fun.protect ~finally:(fun () -> Wolfram.set_disk_cache None)
    (fun () ->
       let src = "Function[{Typed[n, \"MachineInteger\"]}, n*2 + 12]" in
       let cf1 =
         Wolfram.function_compile_src ~target:Wolfram.Bytecode
           ~name:"t_disk" src
       in
       Alcotest.(check int) "fresh compile result" 22
         (expect_int "cf1" (Wolfram.call cf1 [ Expr.Int 5 ]));
       Alcotest.(check bool) "compile published to disk" true
         ((DC.stats dc).DC.writes >= 1);
       Wolfram.compile_cache_clear ();
       let cf2 =
         Wolfram.function_compile_src ~target:Wolfram.Bytecode
           ~name:"t_disk" src
       in
       Alcotest.(check int) "disk-revived compile result" 22
         (expect_int "cf2" (Wolfram.call cf2 [ Expr.Int 5 ]));
       Alcotest.(check bool) "second compile hit the disk layer" true
         ((DC.stats dc).DC.hits >= 1))

(* ------------------------------------------------------------------ *)
(* Satellite regressions                                                *)

(* `wolfc run --repeat N` resolves the compile once and loops the call:
   the cache must be consulted once, not N times *)
let test_repeat_single_cache_lookup () =
  Tier.drain ();  (* quiesce background promotions racing the counters *)
  let src = "Function[{Typed[n, \"MachineInteger\"]}, n*3]" in
  let before = (Wolfram.compile_cache_stats ()).Wolf_compiler.Compile_cache.lookups in
  let cf =
    Wolfram.function_compile_src ~target:Wolfram.Threaded ~name:"t_repeat" src
  in
  for _ = 1 to 10 do
    Alcotest.(check int) "repeat call" 12
      (expect_int "repeat" (Wolfram.call cf [ Expr.Int 4 ]))
  done;
  let after = (Wolfram.compile_cache_stats ()).Wolf_compiler.Compile_cache.lookups in
  Alcotest.(check int) "cache consulted once for 10 repeats" 1 (after - before)

(* the shared background pool registers a pull-time metrics source *)
let test_executor_metrics_source () =
  let cf =
    Wolfram.tiered ~threshold:1 ~promote_target:Wolfram.Threaded
      ~name:"t_exec" (parse sum_src)
  in
  let t = Option.get (Wolfram.tier_of cf) in
  ignore (Wolfram.call cf [ Expr.Int 100 ]);  (* queues a background job *)
  (match Tier.await_promotion t with
   | Tier.Promoted -> ()
   | s -> Alcotest.failf "promotion ended %s" (Tier.state_name s));
  (match Tier.executor_stats () with
   | Some s ->
     Alcotest.(check bool) "pool executed promotions" true
       (s.Wolf_parallel.Executor.executed >= 1)
   | None -> Alcotest.fail "background pool exists but exports no stats");
  let samples = Wolf_obs.Metrics.samples () in
  let has name =
    List.exists
      (fun s ->
         s.Wolf_obs.Metrics.s_name = name
         && List.assoc_opt "pool" s.Wolf_obs.Metrics.s_labels = Some "tier")
      samples
  in
  List.iter
    (fun m ->
       Alcotest.(check bool) (m ^ " sample present") true (has m))
    [ "executor_queue_depth"; "executor_running"; "executor_utilization";
      "executor_executed" ]

let test_shutdown () =
  Tier.drain ();
  Tier.shutdown ();
  (* promotions after a shutdown recreate the pool *)
  let cf =
    Wolfram.tiered ~threshold:1 ~promote_target:Wolfram.Threaded
      ~name:"t_after_shutdown" (parse sum_src)
  in
  let t = Option.get (Wolfram.tier_of cf) in
  ignore (Wolfram.call cf [ Expr.Int 10 ]);
  (match Tier.await_promotion t with
   | Tier.Promoted -> ()
   | s -> Alcotest.failf "post-shutdown promotion ended %s" (Tier.state_name s));
  Tier.shutdown ()

let tests =
  [ Alcotest.test_case "promotion: lifecycle cold -> promoted" `Quick
      test_promotion_lifecycle;
    Alcotest.test_case "promotion: loop backedges count as heat" `Quick
      test_backedge_heat;
    Alcotest.test_case "publication: calls stay correct across the swap" `Quick
      test_publication_hot_swap;
    Alcotest.test_case "promotion: compile failure parks at failed" `Quick
      test_failed_promotion_interprets;
    Alcotest.test_case "promotion: abort-killed compile retries" `Quick
      test_abort_during_compile_retries;
    QCheck_alcotest.to_alcotest qcheck_interleave;
    Alcotest.test_case "disk: store/load round-trip + stats" `Quick
      test_disk_roundtrip;
    Alcotest.test_case "disk: crash before rename is old-or-miss" `Quick
      test_disk_crash_safety;
    Alcotest.test_case "disk: corrupt entry is a miss, then deleted" `Quick
      test_disk_corrupt_entry;
    Alcotest.test_case "disk: size budget evicts oldest-first" `Quick
      test_disk_eviction;
    Alcotest.test_case "disk: second handle reuses warm entries" `Quick
      test_disk_second_handle;
    Alcotest.test_case "disk: facade publishes and revives compiles" `Quick
      test_disk_facade_wiring;
    Alcotest.test_case "repeat: one cache lookup for N calls" `Quick
      test_repeat_single_cache_lookup;
    Alcotest.test_case "metrics: background pool exports a source" `Quick
      test_executor_metrics_source;
    Alcotest.test_case "shutdown: pool joins and recreates" `Quick
      test_shutdown ]
