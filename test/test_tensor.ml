(* Packed arrays (S4): construction, indexing, refcount/copy-on-write,
   slicing, dgemm correctness. *)

open Wolf_wexpr
open Wolf_base

let test_create_checks () =
  Alcotest.check_raises "dims mismatch" (Invalid_argument "Tensor: dims/data mismatch")
    (fun () -> ignore (Tensor.create_int [| 3 |] [| 1; 2 |]));
  Alcotest.check_raises "rank 0" (Invalid_argument "Tensor: rank must be >= 1")
    (fun () -> ignore (Tensor.create_int [||] [||]))

let test_indexing () =
  let t = Tensor.of_int_array [| 10; 20; 30 |] in
  Alcotest.(check int) "1-based" 0 (Tensor.normalize_index t 1);
  Alcotest.(check int) "negative" 2 (Tensor.normalize_index t (-1));
  Alcotest.check_raises "zero index"
    (Errors.Runtime_error (Errors.Part_out_of_range (0, 3)))
    (fun () -> ignore (Tensor.normalize_index t 0));
  Alcotest.check_raises "out of range"
    (Errors.Runtime_error (Errors.Part_out_of_range (4, 3)))
    (fun () -> ignore (Tensor.normalize_index t 4));
  Alcotest.check_raises "negative out of range"
    (Errors.Runtime_error (Errors.Part_out_of_range (-4, 3)))
    (fun () -> ignore (Tensor.normalize_index t (-4)))

let test_copy_on_write () =
  let t = Tensor.of_int_array [| 1; 2; 3 |] in
  Alcotest.(check int) "fresh refcount" 1 (Tensor.refcount t);
  let u = Tensor.ensure_unique t in
  Alcotest.(check bool) "unique: same object" true (t == u);
  Tensor.acquire t;
  let v = Tensor.ensure_unique t in
  Alcotest.(check bool) "shared: copies" true (t != v);
  (* ensure_unique never consumes the caller's claim: the paired release
     (MemoryRelease / the symbol store's forget) does that, so the count on
     the original must be untouched here *)
  Alcotest.(check int) "original claim untouched" 2 (Tensor.refcount t);
  Alcotest.(check int) "copy starts exclusive" 1 (Tensor.refcount v);
  Tensor.set_int v 0 99;
  Alcotest.(check int) "copy isolated" 1 (Tensor.get_int t 0);
  Tensor.release t;
  Alcotest.(check int) "caller release balances" 1 (Tensor.refcount t)

let test_slice () =
  let m = Tensor.create_int [| 2; 3 |] [| 1; 2; 3; 4; 5; 6 |] in
  let row = Tensor.slice m 1 in
  Alcotest.(check (list int)) "second row" [ 4; 5; 6 ]
    (List.init 3 (Tensor.get_int row));
  Tensor.set_int row 0 99;
  Alcotest.(check int) "slice is a copy" 4 (Tensor.get_int m 3);
  Tensor.set_slice m 0 (Tensor.of_int_array [| 7; 8; 9 |]);
  Alcotest.(check int) "set_slice writes through" 7 (Tensor.get_int m 0)

let test_dot_shapes () =
  let v = Tensor.of_real_array [| 1.0; 2.0 |] in
  let m = Tensor.create_real [| 2; 2 |] [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "v.v" 5.0 (Tensor.get_real (Tensor.dot v v) 0);
  let mv = Tensor.dot m v in
  Alcotest.(check (float 1e-9)) "m.v first" 5.0 (Tensor.get_real mv 0);
  Alcotest.(check (float 1e-9)) "m.v second" 11.0 (Tensor.get_real mv 1);
  let mm = Tensor.dot m m in
  Alcotest.(check (float 1e-9)) "m.m [0,0]" 7.0 (Tensor.get_real mm 0);
  Alcotest.(check (float 1e-9)) "m.m [1,1]" 22.0 (Tensor.get_real mm 3);
  Alcotest.check_raises "shape mismatch" (Invalid_argument "Tensor.dot: shape mismatch")
    (fun () ->
       ignore (Tensor.dot m (Tensor.of_real_array [| 1.0; 2.0; 3.0 |])))

let test_int_dot () =
  let v = Tensor.of_int_array [| 1; 2; 3 |] in
  Alcotest.(check int) "int v.v stays exact" 14 (Tensor.get_int (Tensor.dot v v) 0)

(* dgemm against a naive triple loop *)
let prop_dgemm =
  QCheck2.Test.make ~name:"blocked dgemm equals naive product" ~count:50
    QCheck2.Gen.(pair (int_range 1 17) (list_size (return 289) (float_range (-4.) 4.)))
    (fun (n, xs) ->
       let n = min n 17 in
       let flat = Array.of_list xs in
       let a = Tensor.create_real [| n; n |] (Array.sub flat 0 (n * n)) in
       let b =
         Tensor.create_real [| n; n |]
           (Array.init (n * n) (fun i -> flat.(((i * 7) mod (n * n))))) in
       let c = Tensor.dot a b in
       let ok = ref true in
       for i = 0 to n - 1 do
         for j = 0 to n - 1 do
           let expected = ref 0.0 in
           for k = 0 to n - 1 do
             expected :=
               !expected +. (Tensor.get_real a ((i * n) + k) *. Tensor.get_real b ((k * n) + j))
           done;
           if Float.abs (!expected -. Tensor.get_real c ((i * n) + j)) > 1e-9 then ok := false
         done
       done;
       !ok)

let test_total () =
  (match Tensor.total (Tensor.of_int_array [| 1; 2; 3 |]) with
   | `Int 6 -> ()
   | _ -> Alcotest.fail "int total");
  (match Tensor.total (Tensor.of_real_array [| 0.5; 1.5 |]) with
   | `Real r -> Alcotest.(check (float 1e-12)) "real total" 2.0 r
   | `Int _ -> Alcotest.fail "real total kind")

let test_pack_unpack () =
  let e = Parser.parse "{{1, 2}, {3, 4}}" in
  match Wolf_runtime.Rtval.of_expr e with
  | Wolf_runtime.Rtval.Tensor t ->
    Alcotest.(check (list int)) "dims" [ 2; 2 ] (Array.to_list (Tensor.dims t));
    Alcotest.(check bool) "roundtrip" true
      (Expr.equal e (Wolf_runtime.Rtval.tensor_to_expr t))
  | _ -> Alcotest.fail "rectangular int list should pack"

let test_ragged_stays_unpacked () =
  match Wolf_runtime.Rtval.of_expr (Parser.parse "{{1, 2}, {3}}") with
  | Wolf_runtime.Rtval.Expr _ -> ()
  | v -> Alcotest.failf "ragged list packed as %s" (Wolf_runtime.Rtval.type_name v)

let tests =
  [ Alcotest.test_case "creation checks" `Quick test_create_checks;
    Alcotest.test_case "part indexing" `Quick test_indexing;
    Alcotest.test_case "copy-on-write refcounts" `Quick test_copy_on_write;
    Alcotest.test_case "slices" `Quick test_slice;
    Alcotest.test_case "dot shapes" `Quick test_dot_shapes;
    Alcotest.test_case "integer dot" `Quick test_int_dot;
    Alcotest.test_case "total" `Quick test_total;
    Alcotest.test_case "pack/unpack" `Quick test_pack_unpack;
    Alcotest.test_case "ragged lists stay unpacked" `Quick test_ragged_stays_unpacked;
    QCheck_alcotest.to_alcotest prop_dgemm ]
