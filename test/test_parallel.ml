(* Multi-domain stress tests for the domain-safe core (DESIGN.md "Threading
   model").  Each test actually spawns domains — these are the regression
   tests for the shared-state races this layer fixed: torn symbol interning,
   fresh-serial collisions, compile-cache counter drift, lost cross-domain
   aborts, and abort-hook bleed between domains. *)

open Wolf_wexpr
open Wolf_compiler
module B = Wolf_backends

let parse = Parser.parse
let domains = 4

let spawn_all n f =
  let ds = Array.init n (fun i -> Domain.spawn (fun () -> f i)) in
  Array.map Domain.join ds

(* ------------------------------------------------------------------ *)
(* Symbol interning under contention                                    *)

let test_intern_stress () =
  (* every domain interns the same names; physical uniqueness must hold
     across all of them, which is what keeps Symbol.equal's [==] sound *)
  let names = Array.init 64 (Printf.sprintf "ParStress%d") in
  let per_domain =
    spawn_all domains (fun _ -> Array.map Symbol.intern names)
  in
  let reference = Array.map Symbol.intern names in
  Array.iteri
    (fun d syms ->
       Array.iteri
         (fun i s ->
            if not (s == reference.(i)) then
              Alcotest.failf "domain %d: %s interned to a distinct symbol" d
                names.(i))
         syms)
    per_domain;
  (* ids are distinct across distinct names (no torn id draw) *)
  let ids = Array.map Symbol.id reference in
  let module IS = Set.Make (Int) in
  Alcotest.(check int) "distinct ids" (Array.length ids)
    (IS.cardinal (IS.of_list (Array.to_list ids)))

let test_fresh_stress () =
  (* concurrent gensym: every symbol produced anywhere is distinct *)
  let per = 200 in
  let batches =
    spawn_all domains (fun _ ->
        Array.init per (fun _ -> Symbol.fresh "pargen"))
  in
  let all = Array.concat (Array.to_list batches) in
  let module SS = Set.Make (String) in
  let names = SS.of_list (Array.to_list (Array.map Symbol.name all)) in
  Alcotest.(check int) "all fresh names distinct" (domains * per)
    (SS.cardinal names);
  let module IS = Set.Make (Int) in
  let ids = IS.of_list (Array.to_list (Array.map Symbol.id all)) in
  Alcotest.(check int) "all fresh ids distinct" (domains * per)
    (IS.cardinal ids)

let test_fresh_collision_regression () =
  (* a pre-interned base$k name (e.g. from parsed source that spells a
     gensym-style identifier) must never be returned by [fresh]: the serial
     draw and the collision probe happen under one lock, atomically *)
  let base = "parcollide" in
  (* pre-take a band of serials ahead of the counter *)
  for k = 1 to 40 do
    ignore (Symbol.intern (Printf.sprintf "%s$%d" base k))
  done;
  let batches =
    spawn_all domains (fun _ -> Array.init 30 (fun _ -> Symbol.fresh base))
  in
  let all = Array.concat (Array.to_list batches) in
  let module SS = Set.Make (String) in
  let names = SS.of_list (Array.to_list (Array.map Symbol.name all)) in
  Alcotest.(check int) "no duplicate among fresh" (domains * 30)
    (SS.cardinal names);
  for k = 1 to 40 do
    let taken = Printf.sprintf "%s$%d" base k in
    if SS.mem taken names then
      Alcotest.failf "fresh returned pre-interned %s" taken
  done

(* ------------------------------------------------------------------ *)
(* Compile cache under contention                                       *)

let test_cache_churn () =
  (* 4 domains hammer a capacity-4 cache with 8 keys: counters must not
     drift (hits + misses = lookups exactly) and the LRU bound must hold *)
  let cache : int Compile_cache.t = Compile_cache.create ~capacity:4 () in
  let lookups_per_domain = 500 in
  ignore
    (spawn_all domains (fun d ->
         let rng = ref (d * 7919 + 13) in
         for _ = 1 to lookups_per_domain do
           (* splitmix-ish key choice, deterministic per domain *)
           rng := (!rng * 1103515245 + 12345) land 0x3FFFFFFF;
           let k = Printf.sprintf "key%d" (!rng mod 8) in
           let v =
             Compile_cache.find_or_compute cache k ~build:(fun () ->
                 String.length k)
           in
           if v <> String.length k then
             Alcotest.failf "wrong value %d for %s" v k
         done));
  let s = Compile_cache.stats cache in
  Alcotest.(check int) "lookups counted exactly" (domains * lookups_per_domain)
    s.Compile_cache.lookups;
  Alcotest.(check int) "hits + misses = lookups" s.Compile_cache.lookups
    (s.Compile_cache.hits + s.Compile_cache.misses);
  Alcotest.(check bool) "entries bounded by capacity" true
    (s.Compile_cache.entries <= 4);
  Alcotest.(check bool) "some hits happened" true (s.Compile_cache.hits > 0)

let test_cache_inflight_dedup () =
  (* all domains miss the same key at once; the slow build must run once *)
  let cache : int Compile_cache.t = Compile_cache.create ~capacity:4 () in
  let builds = Atomic.make 0 in
  let results =
    spawn_all domains (fun _ ->
        Compile_cache.find_or_compute cache "slow" ~build:(fun () ->
            Atomic.incr builds;
            Unix.sleepf 0.05;
            42))
  in
  Array.iter (fun v -> Alcotest.(check int) "value" 42 v) results;
  Alcotest.(check int) "one build for n concurrent misses" 1
    (Atomic.get builds);
  let s = Compile_cache.stats cache in
  Alcotest.(check int) "one miss, rest hits" 1 s.Compile_cache.misses;
  Alcotest.(check int) "hits + misses = lookups" s.Compile_cache.lookups
    (s.Compile_cache.hits + s.Compile_cache.misses)

(* ------------------------------------------------------------------ *)
(* Parallel compilation end to end                                      *)

let test_parallel_compiles () =
  (* distinct programs compile concurrently through the full pipeline and
     each result computes correctly afterwards *)
  Wolfram.init ();
  let mk i =
    Printf.sprintf
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{s = 0, i = 0}, While[i < n, s = s + i + %d; i = i + 1]; s]]|}
      i
  in
  let compiled =
    spawn_all domains (fun i ->
        let c =
          Pipeline.compile ~name:(Printf.sprintf "par%d" i) (parse (mk i))
        in
        B.Native.compile c)
  in
  Array.iteri
    (fun i (f : Wolf_runtime.Rtval.closure) ->
       let expected = 45 + (10 * i) in  (* sum 0..9 + 10*i *)
       match f.Wolf_runtime.Rtval.call [| Wolf_runtime.Rtval.Int 10 |] with
       | Wolf_runtime.Rtval.Int v ->
         Alcotest.(check int) (Printf.sprintf "par%d result" i) expected v
       | v ->
         Alcotest.failf "par%d: unexpected %s" i
           (Wolf_runtime.Rtval.type_name v))
    compiled

(* ------------------------------------------------------------------ *)
(* Cross-domain abort                                                   *)

let test_cross_domain_abort () =
  (* Abort[] requested on the main domain must stop a compiled spin loop
     running on another domain within one poll stride — the atomic request
     flag is process-global *)
  Wolfram.init ();
  Wolf_base.Abort_signal.clear ();
  let c =
    Pipeline.compile ~name:"parspin"
      (parse
         {|Function[{Typed[n, "MachineInteger"]},
            Module[{i = 0}, While[i < n, i = i + 1]; i]]|})
  in
  let nat = B.Native.compile c in
  let started = Atomic.make false in
  let worker =
    Domain.spawn (fun () ->
        Atomic.set started true;
        match nat.Wolf_runtime.Rtval.call [| Wolf_runtime.Rtval.Int max_int |] with
        | exception Wolf_base.Abort_signal.Aborted -> `Aborted
        | _ -> `Finished)
  in
  while not (Atomic.get started) do Domain.cpu_relax () done;
  Unix.sleepf 0.02;  (* let it get deep into the loop *)
  Wolf_base.Abort_signal.request ();
  let outcome = Domain.join worker in
  Wolf_base.Abort_signal.clear ();
  Alcotest.(check bool) "spin loop aborted from another domain" true
    (outcome = `Aborted)

let test_abort_hooks_domain_local () =
  (* an injected abort scheduled on this domain must not fire on another
     domain's checks, and vice versa *)
  Wolfram.init ();
  Wolf_base.Abort_signal.clear ();
  let c =
    Pipeline.compile ~name:"parcount"
      (parse
         {|Function[{Typed[n, "MachineInteger"]},
            Module[{i = 0}, While[i < n, i = i + 1]; i]]|})
  in
  let nat = B.Native.compile c in
  let stride = Options.default.Options.abort_stride in
  (* schedule an abort on the MAIN domain, then run the loop elsewhere: the
     other domain polls many times but must complete untouched *)
  Wolf_base.Abort_signal.abort_after 1;
  let outcome =
    Domain.join
      (Domain.spawn (fun () ->
           match
             nat.Wolf_runtime.Rtval.call
               [| Wolf_runtime.Rtval.Int (10 * stride) |]
           with
           | Wolf_runtime.Rtval.Int v -> `Done v
           | _ -> `Other
           | exception Wolf_base.Abort_signal.Aborted -> `Aborted))
  in
  Alcotest.(check bool) "other domain unaffected by local injection" true
    (outcome = `Done (10 * stride));
  (* the pending injection still fires here, on the scheduling domain *)
  (match Wolf_base.Abort_signal.check () with
   | exception Wolf_base.Abort_signal.Aborted -> ()
   | () -> Alcotest.fail "local injected abort lost");
  Wolf_base.Abort_signal.clear ();
  (* and the poll counter is per-domain: a burst of checks on another domain
     leaves this domain's count alone *)
  Wolf_base.Abort_signal.reset_stats ();
  Wolf_base.Abort_signal.check ();
  Wolf_base.Abort_signal.check ();
  ignore
    (Domain.join
       (Domain.spawn (fun () ->
            Wolf_base.Abort_signal.reset_stats ();
            for _ = 1 to 100 do Wolf_base.Abort_signal.check () done;
            Wolf_base.Abort_signal.checks_performed ())));
  Alcotest.(check int) "poll counter is domain-local" 2
    (Wolf_base.Abort_signal.checks_performed ())

(* ------------------------------------------------------------------ *)
(* The pool itself                                                      *)

let test_pool_deterministic () =
  let f i = (i * 37) mod 101 in
  let seq = Wolf_parallel.Pool.map ~jobs:1 257 f in
  let par = Wolf_parallel.Pool.map ~jobs:domains 257 f in
  Alcotest.(check (array int)) "jobs=4 equals jobs=1" seq par

let test_pool_exception () =
  (* a failing task re-raises on the caller after all domains wind down *)
  match
    Wolf_parallel.Pool.map ~jobs:domains 100 (fun i ->
        if i = 57 then failwith "task 57" else i)
  with
  | _ -> Alcotest.fail "expected the task exception to propagate"
  | exception Failure m -> Alcotest.(check string) "first error" "task 57" m

let test_fuzz_jobs_deterministic () =
  (* the acceptance property at test scale: a sharded campaign returns the
     same report as a sequential one *)
  let cfg ~jobs =
    { Wolf_fuzz.Driver.default_config with
      Wolf_fuzz.Driver.seed = 11; count = 40; jobs }
  in
  let r1 = Wolf_fuzz.Driver.run (cfg ~jobs:1) in
  let r4 = Wolf_fuzz.Driver.run (cfg ~jobs:4) in
  Alcotest.(check int) "generated equal" r1.Wolf_fuzz.Driver.generated
    r4.Wolf_fuzz.Driver.generated;
  Alcotest.(check int) "disagreements equal" r1.Wolf_fuzz.Driver.disagreements
    r4.Wolf_fuzz.Driver.disagreements;
  Alcotest.(check int) "failure lists equal"
    (List.length r1.Wolf_fuzz.Driver.failures)
    (List.length r4.Wolf_fuzz.Driver.failures)

let tests =
  [ Alcotest.test_case "interning is physically unique across domains" `Quick
      test_intern_stress;
    Alcotest.test_case "fresh never duplicates under contention" `Quick
      test_fresh_stress;
    Alcotest.test_case "fresh skips pre-interned gensym-style names" `Quick
      test_fresh_collision_regression;
    Alcotest.test_case "cache counters exact under churn" `Quick
      test_cache_churn;
    Alcotest.test_case "concurrent misses build once" `Quick
      test_cache_inflight_dedup;
    Alcotest.test_case "full pipeline compiles in parallel" `Quick
      test_parallel_compiles;
    Alcotest.test_case "Abort[] crosses domains" `Quick
      test_cross_domain_abort;
    Alcotest.test_case "abort test hooks stay domain-local" `Quick
      test_abort_hooks_domain_local;
    Alcotest.test_case "pool merge is deterministic" `Quick
      test_pool_deterministic;
    Alcotest.test_case "pool propagates task exceptions" `Quick
      test_pool_exception;
    Alcotest.test_case "fuzz --jobs reproduces --jobs 1" `Quick
      test_fuzz_jobs_deterministic ]
