(* C emitter regressions and the [wolfc build] product.

   Four emitter bugs each get a test that pins the emitted source shape
   (always) and the observed behaviour of the built binary (when a system C
   compiler is available):
   - jump arguments are a parallel copy, not a sequence of per-argument
     copies (a swap-shaped back edge is the distinguishing input);
   - string constants use hex escapes with literal splicing, never OCaml's
     decimal escapes (which C reads as octal);
   - non-finite real constants emit INFINITY/NAN, not the invalid tokens
     %.17g produces;
   - tensor allocation checks for overflow/negative sizes and calloc
     failure, exiting with the OOM code instead of corrupting memory.
   Plus an end-to-end smoke: standalone binaries built from real programs
   print byte-identically to the interpreter. *)

open Wolf_wexpr
open Wolf_compiler
module B = Wolf_backends

let have_cc = lazy (B.C_build.available ())

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_contains name src needle =
  if not (contains src needle) then
    Alcotest.failf "%s: emitted C lacks %S" name needle

let check_absent name src needle =
  if contains src needle then
    Alcotest.failf "%s: emitted C contains forbidden %S" name needle

(* a compiled record whose [program] we can swap for a hand-built WIR: the
   other fields (resolution, options, timings …) are not read by the
   emitter *)
let compiled_shell () =
  Pipeline.compile ~name:"hand"
    (Parser.parse {|Function[{Typed[n, "MachineInteger"]}, n]|})

(* compile the emitted unit and run it, returning (exit code, first stdout
   line); argv entries are passed without a shell so raw bytes survive *)
let run_built ?(argv = []) source =
  let dir = Filename.temp_file "wolf_cemit" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let exe = Filename.concat dir "t" in
  let rm () =
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))
  in
  Fun.protect ~finally:rm (fun () ->
      (match B.C_build.build ~source ~output:exe () with
       | Ok () -> ()
       | Error e -> Alcotest.failf "cc failed: %s" e);
      let ic =
        Unix.open_process_args_in exe (Array.of_list (exe :: argv))
      in
      let line = try input_line ic with End_of_file -> "" in
      let code =
        match Unix.close_process_in ic with
        | Unix.WEXITED n -> n
        | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
      in
      (code, String.trim line))

(* ---- 1. parallel jump-argument copies -------------------------------- *)

(* A loop header whose back edge permutes its own block parameters:
   L1(a, b, i) looping to L1(b, a, i+1).  Source-level swaps reach the
   emitter through fresh copy destinations, so the permuting jump is built
   by hand — it is what simplify-cfg's jump threading produces when it
   substitutes a collapsed block's parameters into a back edge.  Five
   iterations of (1, 2) end at (2, 1): a*100 + b = 201.  Sequential
   per-argument copies collapse the pair to (2, 2) = 202 on the first
   iteration. *)
let swap_program () =
  let v name = Wir.fresh_var ~name ~ty:Types.int64 () in
  let a = v "a" and b = v "b" and i = v "i" in
  let i1 = v "i1" and cond = Wir.fresh_var ~name:"c" ~ty:Types.boolean () in
  let t1 = v "t1" and t2 = v "t2" in
  let jump target jargs = Wir.Jump { Wir.target; jargs } in
  let entry =
    { Wir.label = 0; bparams = [||]; instrs = [];
      term =
        jump 1
          [| Wir.Oconst (Wir.Cint 1); Wir.Oconst (Wir.Cint 2);
             Wir.Oconst (Wir.Cint 0) |] }
  in
  let header =
    { Wir.label = 1; bparams = [| a; b; i |];
      instrs =
        [ Wir.Call
            { dst = i1;
              callee = Wir.Resolved { base = "checked_binary_plus";
                                      mangled = "checked_binary_plus_i64" };
              args = [| Wir.Ovar i; Wir.Oconst (Wir.Cint 1) |] };
          Wir.Call
            { dst = cond;
              callee = Wir.Resolved { base = "binary_less";
                                      mangled = "binary_less_i64" };
              args = [| Wir.Ovar i; Wir.Oconst (Wir.Cint 5) |] } ];
      term =
        Wir.Branch
          { cond = Wir.Ovar cond;
            if_true = { Wir.target = 1; jargs = [| Wir.Ovar b; Wir.Ovar a; Wir.Ovar i1 |] };
            if_false = { Wir.target = 2; jargs = [||] } } }
  in
  let exit_b =
    { Wir.label = 2; bparams = [||];
      instrs =
        [ Wir.Call
            { dst = t1;
              callee = Wir.Resolved { base = "checked_binary_times";
                                      mangled = "checked_binary_times_i64" };
              args = [| Wir.Ovar a; Wir.Oconst (Wir.Cint 100) |] };
          Wir.Call
            { dst = t2;
              callee = Wir.Resolved { base = "checked_binary_plus";
                                      mangled = "checked_binary_plus_i64" };
              args = [| Wir.Ovar t1; Wir.Ovar b |] } ];
      term = Wir.Return (Wir.Ovar t2) }
  in
  { Wir.funcs =
      [ { Wir.fname = "swapf"; fparams = [||]; ret_ty = Some Types.int64;
          blocks = [ entry; header; exit_b ]; finline = false;
          fsource = None } ];
    pmeta = [] }

let test_swap_jump () =
  let c = { (compiled_shell ()) with Pipeline.program = swap_program () } in
  match B.C_emit.emit_with_driver c ~args:[] with
  | Error e -> Alcotest.fail e
  | Ok emitted ->
    let src = emitted.B.C_emit.source in
    (* both temps bind before either parameter is written *)
    check_contains "swap" src "wolf_tmp0";
    check_contains "swap" src "wolf_tmp1";
    if Lazy.force have_cc then begin
      let code, line = run_built src in
      Alcotest.(check int) "swap exit" 0 code;
      Alcotest.(check string) "swapped pair survives the back edge" "201" line
    end

(* ---- 2. C-safe string escapes ----------------------------------------- *)

let test_string_escapes () =
  (* byte 233 followed by digits: a decimal escape (OCaml %S) would emit
     the six characters \233123, which C reads as octal \23 then "3123" —
     different bytes.  The emitter must hex-escape and splice so the
     digits cannot extend the escape. *)
  let gnarly = "\233123" in
  let src_wl =
    Printf.sprintf
      {|Function[{}, Total[ToCharacterCode["%s" <> "q\"b\\s"]]]|} gnarly
  in
  let c = Pipeline.compile ~name:"strlit" (Parser.parse src_wl) in
  match B.C_emit.emit_with_driver c ~args:[] with
  | Error e -> Alcotest.fail e
  | Ok emitted ->
    let src = emitted.B.C_emit.source in
    check_contains "strlit" src {|\xe9""|};  (* spliced hex escape *)
    check_absent "strlit" src "\\233";       (* no decimal escapes *)
    let expected =
      (* byte sum, computed independently of every printer under test *)
      let total s = String.fold_left (fun acc ch -> acc + Char.code ch) 0 s in
      string_of_int (total gnarly + total "q\"b\\s")
    in
    if Lazy.force have_cc then begin
      let code, line = run_built src in
      Alcotest.(check int) "strlit exit" 0 code;
      Alcotest.(check string) "bytes round-trip through the C literal"
        expected line
    end

(* ---- 3. non-finite real constants ------------------------------------- *)

let test_nonfinite_reals () =
  let c =
    Pipeline.compile ~name:"reals"
      (Parser.parse
         {|Function[{Typed[a, "Real64"], Typed[b, "Real64"]},
            If[a > 0.0, 1, 2]]|})
  in
  let args = [ Wolf_runtime.Rtval.Real Float.infinity;
               Wolf_runtime.Rtval.Real Float.nan ] in
  match B.C_emit.emit_with_driver c ~args with
  | Error e -> Alcotest.fail e
  | Ok emitted ->
    let src = emitted.B.C_emit.source in
    check_contains "reals" src "INFINITY";
    check_contains "reals" src "NAN";
    (* the invalid %.17g spellings never appear as call arguments *)
    check_absent "reals" src "(inf";
    check_absent "reals" src " nan";
    if Lazy.force have_cc then begin
      let code, line = run_built src in
      Alcotest.(check int) "reals exit" 0 code;
      Alcotest.(check string) "infinity compares as infinite" "1" line
    end

(* ---- 4. guarded tensor allocation ------------------------------------- *)

let test_alloc_guard () =
  let c =
    Pipeline.compile ~name:"alloc"
      (Parser.parse
         {|Function[{Typed[n, "Integer64"]},
            Length[ConstantArray[0., n]]]|})
  in
  match B.C_emit.emit_standalone c with
  | Error e -> Alcotest.fail e
  | Ok emitted ->
    let src = emitted.B.C_emit.source in
    check_contains "alloc" src "__builtin_mul_overflow";
    check_contains "alloc" src "OutOfMemory";
    if Lazy.force have_cc then begin
      (* far beyond the byte cap: must exit with the OOM code, not crash *)
      let code, _ = run_built src ~argv:[ "88888888888888" ] in
      Alcotest.(check int) "huge allocation exits with the OOM code" 4 code;
      (* and the argument parser path: junk argv is a usage error *)
      let code, _ = run_built src ~argv:[ "notanumber" ] in
      Alcotest.(check int) "bad argument exits with the usage code" 2 code;
      let code, _ = run_built src ~argv:[] in
      Alcotest.(check int) "missing argument exits with the usage code" 2 code
    end

(* ---- 5. build smoke: binaries vs the interpreter ---------------------- *)

let smoke_programs =
  [ ( "swap-loop",
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{a = 1, b = 2, t = 0, c = 1},
          While[c <= n, t = a; a = b; b = t; c = c + 1];
          a*100 + b]]|},
      [ "5" ] );
    ( "array-arg",
      {|Function[{Typed[v, "PackedArray"["Integer64", 1]],
                  Typed[x, "MachineInteger"]},
         Total[v]*x + Length[v]]|},
      [ "{1, 2, 3}"; "4" ] );
    ( "real-ret",
      {|Function[{Typed[x, "Real64"]}, x*2.0 + 0.5]|},
      [ "1.25" ] );
    ( "string-arg",
      {|Function[{Typed[s, "String"]}, Total[ToCharacterCode[s]]]|},
      [ "caf\195\169" ] );
    ( "array-ret",
      {|Function[{Typed[n, "MachineInteger"]},
         Reverse[ConstantArray[n, 4]]]|},
      [ "7" ] ) ]

let test_build_smoke () =
  if not (Lazy.force have_cc) then ()
  else
    List.iter
      (fun (name, src_wl, argv) ->
         let fexpr = Parser.parse src_wl in
         let args =
           (* interpreter gets the same values the binary parses from argv;
              string parameters travel as raw bytes on both sides *)
           List.map
             (fun (s : string) ->
                match Parser.parse_opt s with
                | Ok e when not (contains src_wl {|"String"|}) -> e
                | _ -> Expr.Str s)
             argv
         in
         let expected =
           match
             Wolfram.interpret_expr
               (Expr.Normal (fexpr, Array.of_list args))
           with
           | v -> Form.input_form v
           | exception e ->
             Alcotest.failf "%s: interpreter failed: %s" name
               (Printexc.to_string e)
         in
         let c = Pipeline.compile ~name (Parser.parse src_wl) in
         match B.C_emit.emit_standalone c with
         | Error e -> Alcotest.failf "%s: %s" name e
         | Ok emitted ->
           let code, line = run_built emitted.B.C_emit.source ~argv in
           Alcotest.(check int) (name ^ " exit") 0 code;
           Alcotest.(check string)
             (name ^ " stdout matches interpreter InputForm") expected line)
      smoke_programs

let tests =
  [ Alcotest.test_case "jump copies are parallel (swap back edge)" `Slow
      test_swap_jump;
    Alcotest.test_case "string constants: hex escapes, spliced" `Slow
      test_string_escapes;
    Alcotest.test_case "non-finite real constants are valid C" `Slow
      test_nonfinite_reals;
    Alcotest.test_case "tensor allocation guard exits with OOM code" `Slow
      test_alloc_guard;
    Alcotest.test_case "built binaries match interpreter InputForm" `Slow
      test_build_smoke ]
