(* Expression substrate (S3/S5): structure, canonical ordering, lexing,
   parsing, printing, and print→parse round-trips. *)

open Wolf_wexpr

let parse = Parser.parse
let expr = Alcotest.testable (Fmt.of_to_string Expr.to_string) Expr.equal

let test_atoms () =
  Alcotest.check expr "int" (Expr.Int 42) (parse "42");
  Alcotest.check expr "negative int" (Expr.Int (-7)) (parse "-7");
  Alcotest.check expr "real" (Expr.Real 2.5) (parse "2.5");
  Alcotest.check expr "trailing dot real" (Expr.Real 2.0) (parse "2.");
  Alcotest.check expr "scientific" (Expr.Real 1.5e-3) (parse "1.5e-3");
  Alcotest.check expr "string" (Expr.Str "hi\nthere") (parse {|"hi\nthere"|});
  Alcotest.check expr "symbol" (Expr.sym "foo") (parse "foo");
  (match parse "123456789012345678901234567890" with
   | Expr.Big _ -> ()
   | e -> Alcotest.failf "big literal parsed as %s" (Expr.to_string e))

let test_operator_structure () =
  let cases =
    [ ("1 + 2*3", "Plus[1, Times[2, 3]]");
      ("a - b - c", "Subtract[Subtract[a, b], c]");
      ("2^3^2", "Power[2, Power[3, 2]]");
      ("a.b.c", "Dot[Dot[a, b], c]");
      ("-x^2", "Times[-1, Power[x, 2]]");
      ("a && b || c", "Or[And[a, b], c]");
      ("!a && b", "And[Not[a], b]");
      ("x -> y -> z", "Rule[x, Rule[y, z]]");
      ("f @ x", "f[x]");
      ("x // f", "f[x]");
      ("f /@ l", "Map[f, l]");
      ("f @@ l", "Apply[f, l]");
      ("a /. b -> c", "ReplaceAll[a, Rule[b, c]]");
      ("a //. b -> c", "ReplaceRepeated[a, Rule[b, c]]");
      ("s <> t <> u", "StringJoin[s, t, u]");
      ("a == b == c", "Equal[a, b, c]");
      ("a <= b <= c", "LessEqual[a, b, c]");
      ("a === b", "SameQ[a, b]");
      ("a =!= b", "UnsameQ[a, b]");
      ("x = 1", "Set[x, 1]");
      ("x := y", "SetDelayed[x, y]");
      ("x += 2", "AddTo[x, 2]");
      ("i++", "Increment[i]");
      ("i--", "Decrement[i]");
      ("a[[1]]", "Part[a, 1]");
      ("a[[i, j]]", "Part[a, i, j]");
      ("a[[1]][[2]]", "Part[Part[a, 1], 2]");
      ("f[x][y]", "f[x][y]");
      ("# + #2 &", "Function[Plus[Slot[1], Slot[2]]]");
      ("{}", "List[]");
      ("x_", "Pattern[x, Blank[]]");
      ("x_Integer", "Pattern[x, Blank[Integer]]");
      ("_Real", "Blank[Real]");
      ("x__", "Pattern[x, BlankSequence[]]");
      ("___", "BlankNullSequence[]");
      ("a; b; c", "CompoundExpression[a, b, c]");
      ("a;", "CompoundExpression[a, Null]") ]
  in
  List.iter
    (fun (src, full) ->
       Alcotest.(check string) src full (Expr.to_string (parse src)))
    cases

let test_parse_errors () =
  List.iter
    (fun src ->
       match Parser.parse_opt src with
       | Error _ -> ()
       | Ok e -> Alcotest.failf "%s should not parse, got %s" src (Expr.to_string e))
    [ "f["; "1 +"; "{1, 2"; ")"; "a[[1]"; {|"unterminated|}; "(* unclosed"; "" ]

let test_comments_whitespace () =
  Alcotest.check expr "comment" (Expr.Int 5) (parse "(* note *) 5");
  Alcotest.check expr "nested comment" (Expr.Int 5) (parse "(* a (* b *) c *) 5");
  Alcotest.check expr "newlines" (parse "f[1, 2]") (parse "f[\n  1,\n  2\n]")

let test_canonical_order () =
  let sorted l =
    let a = Array.of_list (List.map parse l) in
    Array.sort Expr.compare a;
    Array.to_list (Array.map Expr.to_string a)
  in
  Alcotest.(check (list string)) "numbers before symbols"
    [ "1"; "2.5"; "3"; "\"s\""; "a"; "b"; "f[x]" ]
    (sorted [ "b"; "f[x]"; "3"; "a"; "2.5"; {|"s"|}; "1" ])

let test_equal_hash () =
  let a = parse "f[x, {1, 2.0}, \"s\"]" and b = parse "f[x, {1, 2.0}, \"s\"]" in
  Alcotest.(check bool) "structural equality" true (Expr.equal a b);
  Alcotest.(check int) "hash agreement" (Expr.hash a) (Expr.hash b);
  Alcotest.(check bool) "Int <> Real" false (Expr.equal (Expr.Int 2) (Expr.Real 2.0));
  Alcotest.(check bool) "Int = Big of same value" true
    (Expr.equal (Expr.Int 5) (Expr.Big (Wolf_base.Bignum.of_int 5)))

let test_head () =
  let h s = Expr.to_string (Expr.head (parse s)) in
  Alcotest.(check string) "int" "Integer" (h "3");
  Alcotest.(check string) "real" "Real" (h "3.5");
  Alcotest.(check string) "string" "String" (h "\"x\"");
  Alcotest.(check string) "symbol" "Symbol" (h "x");
  Alcotest.(check string) "normal" "f" (h "f[x]");
  Alcotest.(check string) "nested head" "f[x]" (h "f[x][y]")

let test_input_form_roundtrip_cases () =
  (* InputForm printing of these must re-parse to the same tree *)
  List.iter
    (fun src ->
       let e = parse src in
       let printed = Form.input_form e in
       Alcotest.check expr (src ^ " ~ " ^ printed) e (parse printed))
    [ "1 + 2*3"; "a - b - c"; "f[x_Integer] := x + 1"; "{1, {2, 3}, x}";
      "x = y; z"; "-a*b"; "2^(3^2)"; "(a + b)*c"; "#1 + #2 &";
      "Map[f, lst] /. f[a_] :> h[a]"; "a[[2, -1]]"; "x && !y || z";
      "Function[{u}, u + 1][5]"; "\"str\" <> s" ]

(* property: FullForm always round-trips for generated expressions *)
let gen_expr : Expr.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized (fun n ->
      fix
        (fun self n ->
           if n <= 0 then
             oneof
               [ map (fun i -> Expr.Int i) (int_range (-1000) 1000);
                 map (fun f -> Expr.Real (Float.round (f *. 100.) /. 100.))
                   (float_range (-10.) 10.);
                 map Expr.str (string_size ~gen:(char_range 'a' 'z') (int_range 0 5));
                 map Expr.sym
                   (oneof [ return "x"; return "y"; return "foo"; return "Bar" ]) ]
           else begin
             let sub = self (n / 3) in
             oneof
               [ self 0;
                 map2
                   (fun h args -> Expr.normal (Expr.sym h) args)
                   (oneof [ return "f"; return "g"; return "Plus"; return "List" ])
                   (list_size (int_range 0 3) sub) ]
           end)
        (min n 12))

let prop_fullform_roundtrip =
  QCheck2.Test.make ~name:"FullForm print/parse roundtrip" ~count:400 gen_expr
    (fun e -> Expr.equal e (parse (Expr.to_string e)))

let prop_inputform_roundtrip =
  QCheck2.Test.make ~name:"InputForm print/parse roundtrip" ~count:400 gen_expr
    (fun e -> Expr.equal e (parse (Form.input_form e)))

(* Seeded operator-term round-trip: a deterministic generator over the
   operator subset the compiler front end leans on (arithmetic, Part,
   comparisons, logic, rules, Map/Apply, lists), layered the way real
   programs nest them.  Fixed seed → the same 200 terms every run, so a
   printer/parser precedence regression fails reproducibly. *)
let seeded_operator_term st depth0 =
  let open Expr in
  let pick st a = a.(Random.State.int st (Array.length a)) in
  let app h args = normal (sym h) args in
  let atom st =
    match Random.State.int st 4 with
    | 0 -> Int (Random.State.int st 41 - 20)
    | 1 -> Real (float_of_int (Random.State.int st 800 - 400) /. 100.)
    | 2 -> sym (pick st [| "a"; "b"; "x"; "y" |])
    | _ -> Int (Random.State.int st 7)
  in
  (* arithmetic layer: Plus/Times/Subtract/Power/Part over atoms *)
  let rec arith st n =
    if n <= 0 then atom st
    else
      let sub () = arith st (n - 1) in
      match Random.State.int st 6 with
      | 0 -> app "Plus" (List.init (2 + Random.State.int st 2) (fun _ -> sub ()))
      | 1 -> app "Times" (List.init (2 + Random.State.int st 2) (fun _ -> sub ()))
      | 2 -> app "Subtract" [ sub (); sub () ]
      | 3 -> app "Power" [ sub (); sub () ]
      | 4 ->
        (* Part indexes a symbol base: a[[i]] or a[[i, j]] *)
        let idx () = Int (1 + Random.State.int st 9) in
        app "Part"
          (sym (pick st [| "a"; "b"; "v" |])
           :: List.init (1 + Random.State.int st 2) (fun _ -> idx ()))
      | _ -> atom st
  in
  (* comparison layer over arithmetic *)
  let compare_ st n =
    app (pick st [| "Less"; "Equal" |]) [ arith st n; arith st n ]
  in
  (* boolean layer over comparisons *)
  let rec boolean st n =
    if n <= 0 then compare_ st 1
    else
      match Random.State.int st 3 with
      | 0 -> app "And" [ boolean st (n - 1); boolean st (n - 1) ]
      | 1 -> app "Or" [ boolean st (n - 1); boolean st (n - 1) ]
      | _ -> app "Not" [ boolean st (n - 1) ]
  in
  (* structural layer: any of the above under Rule/Map/Apply/List *)
  let any st n =
    match Random.State.int st 3 with
    | 0 -> arith st n
    | 1 -> boolean st (min n 2)
    | _ -> compare_ st n
  in
  match Random.State.int st 5 with
  | 0 -> app "Rule" [ any st depth0; any st depth0 ]
  | 1 -> app "Map" [ sym (pick st [| "f"; "g" |]); any st depth0 ]
  | 2 -> app "Apply" [ sym (pick st [| "f"; "g" |]); any st depth0 ]
  | 3 -> app "List" (List.init (Random.State.int st 4) (fun _ -> any st (depth0 - 1)))
  | _ -> any st depth0

let test_seeded_operator_roundtrip () =
  let st = Random.State.make [| 0x5eed; 2020 |] in
  for i = 1 to 200 do
    let e = seeded_operator_term st (2 + Random.State.int st 2) in
    let ff = Expr.to_string e in
    Alcotest.check expr (Printf.sprintf "term %d FullForm: %s" i ff) e (parse ff);
    let inf = Form.input_form e in
    Alcotest.check expr (Printf.sprintf "term %d InputForm: %s" i inf) e (parse inf)
  done

let prop_compare_total_order =
  QCheck2.Test.make ~name:"compare is antisymmetric" ~count:300
    QCheck2.Gen.(pair gen_expr gen_expr)
    (fun (a, b) -> compare (Expr.compare a b) 0 = compare 0 (Expr.compare b a))

let tests =
  [ Alcotest.test_case "atoms" `Quick test_atoms;
    Alcotest.test_case "operator structure" `Quick test_operator_structure;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments and whitespace" `Quick test_comments_whitespace;
    Alcotest.test_case "canonical ordering" `Quick test_canonical_order;
    Alcotest.test_case "equality and hashing" `Quick test_equal_hash;
    Alcotest.test_case "Head" `Quick test_head;
    Alcotest.test_case "InputForm roundtrip cases" `Quick test_input_form_roundtrip_cases;
    Alcotest.test_case "seeded operator-term roundtrip" `Quick test_seeded_operator_roundtrip;
    QCheck_alcotest.to_alcotest prop_fullform_roundtrip;
    QCheck_alcotest.to_alcotest prop_inputform_roundtrip;
    QCheck_alcotest.to_alcotest prop_compare_total_order ]
