(* Backends (S21–S24): differential execution across the interpreter, the
   threaded backend, the ocamlopt JIT and the WVM, plus soft failure, abort
   behaviour, closures, and a random-program differential property. *)

open Wolf_wexpr
open Wolf_compiler
open Wolf_runtime
module B = Wolf_backends

let parse = Parser.parse
let expr = Alcotest.testable (Fmt.of_to_string Expr.to_string) Expr.equal

let jit_on = lazy (B.Jit.available ())

(* Compile [src] and run on every backend; every result must equal the
   interpreter's evaluation of the same application. *)
let differential ?options ?type_env ?(wvm = true) name src (args : Expr.t list) =
  Wolfram.init ();
  B.Compiled_function.quiet := true;
  let fexpr = parse src in
  let args_a = Array.of_list args in
  let reference = Wolf_kernel.Session.eval (Expr.Normal (fexpr, args_a)) in
  let c = Pipeline.compile ?options ?type_env ~name fexpr in
  let vals = Array.map Rtval.of_expr args_a in
  let native = B.Native.compile c in
  Alcotest.check expr (name ^ "/threaded") reference
    (Rtval.to_expr (native.Rtval.call vals));
  if Lazy.force jit_on then begin
    match B.Jit.compile c with
    | Ok j ->
      Alcotest.check expr (name ^ "/jit") reference (Rtval.to_expr (j.Rtval.call vals))
    | Error e -> Alcotest.failf "%s: jit compile failed: %s" name e
  end;
  if wvm then begin
    let w = B.Wvm.compile fexpr in
    Alcotest.check expr (name ^ "/wvm") reference (B.Wvm.call w args_a)
  end

let test_scalar_programs () =
  differential "addone" {|Function[{Typed[n, "MachineInteger"]}, n + 1]|} [ Expr.Int 41 ];
  differential "arith"
    {|Function[{Typed[n, "MachineInteger"]}, (n*3 - 4)*(n + 2)]|} [ Expr.Int 7 ];
  differential "reals" {|Function[{Typed[x, "Real64"]}, Sin[x]*Cos[x] + x^2]|}
    [ Expr.Real 0.37 ];
  differential "mixed promote" {|Function[{Typed[n, "MachineInteger"]}, n/2.0 + 1]|}
    [ Expr.Int 9 ];
  differential "mod quotient"
    {|Function[{Typed[n, "MachineInteger"]}, Mod[n, 7]*100 + Quotient[n, 7]]|}
    [ Expr.Int (-23) ];
  differential "bits"
    {|Function[{Typed[n, "MachineInteger"]}, BitXor[BitAnd[n, 255], BitShiftLeft[1, 4]]]|}
    [ Expr.Int 10_000 ];
  differential "booleans"
    {|Function[{Typed[n, "MachineInteger"]}, n > 2 && (n < 10 || EvenQ[n])]|}
    [ Expr.Int 5 ];
  differential "min max"
    {|Function[{Typed[a, "MachineInteger"], Typed[b, "MachineInteger"]}, Min[a, b]*Max[a, b]]|}
    [ Expr.Int 3; Expr.Int 8 ];
  differential "power int" {|Function[{Typed[n, "MachineInteger"]}, n^13]|} [ Expr.Int 3 ];
  differential "floor ceiling"
    {|Function[{Typed[x, "Real64"]}, Floor[x]*10 + Ceiling[x]]|} [ Expr.Real 2.3 ]

let test_control_flow_programs () =
  differential "if value" {|Function[{Typed[n, "MachineInteger"]}, If[n > 0, n, -n]]|}
    [ Expr.Int (-9) ];
  differential "sum loop"
    {|Function[{Typed[n, "MachineInteger"]},
       Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]|}
    [ Expr.Int 100 ];
  differential "nested loops"
    {|Function[{Typed[n, "MachineInteger"]},
       Module[{s = 0, i = 1, j = 1},
        While[i <= n, j = 1; While[j <= i, s = s + j; j = j + 1]; i = i + 1];
        s]]|}
    [ Expr.Int 12 ];
  differential "do loop"
    {|Function[{Typed[n, "MachineInteger"]},
       Module[{s = 1}, Do[s = s*2, {n}]; s]]|}
    [ Expr.Int 10 ];
  differential "for loop"
    {|Function[{Typed[n, "MachineInteger"]},
       Module[{t = 0}, For[i = 1, i <= n, i++, t = t + i*i]; t]]|}
    [ Expr.Int 6 ];
  differential "early condition side effects"
    {|Function[{Typed[n, "MachineInteger"]},
       Module[{i = 0, c = 0}, While[(i = i + 1) <= n, c = c + 1]; i*100 + c]]|}
    [ Expr.Int 5 ]

let test_string_programs () =
  (* strings are not WVM-representable (L1) *)
  differential ~wvm:false "string length"
    {|Function[{Typed[s, "String"]}, StringLength[s] + 1]|} [ Expr.Str "hello" ];
  differential ~wvm:false "string join"
    {|Function[{Typed[s, "String"]}, s <> "!"]|} [ Expr.Str "hi" ];
  differential ~wvm:false "char codes"
    {|Function[{Typed[s, "String"]}, Total[ToCharacterCode[s]]]|} [ Expr.Str "AB" ]

let test_array_programs () =
  let v = parse "{3, 1, 4, 1, 5, 9, 2, 6}" in
  differential "array sum"
    {|Function[{Typed[v, "PackedArray"["Integer64", 1]]},
       Module[{s = 0, i = 1, n = Length[v]}, While[i <= n, s = s + v[[i]]; i = i + 1]; s]]|}
    [ v ];
  differential "array total prim"
    {|Function[{Typed[v, "PackedArray"["Integer64", 1]]}, Total[v]]|} [ v ];
  differential "array reverse"
    {|Function[{Typed[v, "PackedArray"["Integer64", 1]]}, Reverse[v]]|} [ v ];
  differential "negative index"
    {|Function[{Typed[v, "PackedArray"["Integer64", 1]]}, v[[-1]] + v[[-2]]]|} [ v ];
  differential "range build"
    {|Function[{Typed[n, "MachineInteger"]}, Total[Range[n]]]|} [ Expr.Int 50 ];
  differential "matrix access"
    {|Function[{Typed[m, "PackedArray"["Real64", 2]]}, m[[2, 1]] + m[[1, 2]]]|}
    [ parse "{{1.0, 2.0}, {3.0, 4.0}}" ];
  differential "dot"
    {|Function[{Typed[a, "PackedArray"["Real64", 2]], Typed[b, "PackedArray"["Real64", 2]]},
       a . b]|}
    [ parse "{{1.0, 2.0}, {3.0, 4.0}}"; parse "{{5.0, 6.0}, {7.0, 8.0}}" ]

let test_array_mutation_program () =
  differential "histogram small"
    {|Function[{Typed[data, "PackedArray"["Integer64", 1]]},
       Module[{bins = ConstantArray[0, 4], i = 1, n = Length[data], b = 0},
        While[i <= n, b = data[[i]] + 1; bins[[b]] = bins[[b]] + 1; i = i + 1];
        bins]]|}
    [ parse "{0, 1, 2, 3, 1, 2, 2}" ]

let test_mutability_isolated () =
  (* compiled code must not mutate the interpreter's copy *)
  differential "caller array untouched"
    {|Function[{Typed[a0, "PackedArray"["Integer64", 1]]},
       Module[{a = a0, b = 0}, b = a[[3]]; a[[3]] = -20; b - a[[3]]]]|}
    [ parse "{1, 2, 3}" ]

let test_closures () =
  differential ~wvm:false "closure capture"
    {|Function[{Typed[n, "MachineInteger"]},
       Module[{f = Function[{x}, x + n]}, f[10] + f[20]]]|}
    [ Expr.Int 5 ];
  differential ~wvm:false "closure over loop result"
    {|Function[{Typed[n, "MachineInteger"]},
       Module[{k = 0, g = 0},
        k = n*2;
        Module[{f = Function[{x}, x*k]}, f[3]]]]|}
    [ Expr.Int 4 ]

let test_recursion () =
  (* the interpreter cannot be the reference here (cfib is only defined as a
     compiled self-reference), so assert the known value on both backends *)
  let options = { Options.default with Options.self_name = Some "cfib" } in
  let c =
    Pipeline.compile ~options ~name:"cfib"
      (parse {|Function[{Typed[n, "MachineInteger"]}, If[n < 1, 1, cfib[n-1] + cfib[n-2]]]|})
  in
  let nat = B.Native.compile c in
  Alcotest.check expr "threaded" (Expr.Int 1597)
    (Rtval.to_expr (nat.Rtval.call [| Rtval.Int 15 |]));
  if Lazy.force jit_on then
    match B.Jit.compile c with
    | Ok j ->
      Alcotest.check expr "jit" (Expr.Int 1597)
        (Rtval.to_expr (j.Rtval.call [| Rtval.Int 15 |]))
    | Error e -> Alcotest.failf "jit: %s" e

let test_soft_failure_both_backends () =
  Wolfram.init ();
  B.Compiled_function.quiet := true;
  let src =
    {|Function[{Typed[n, "MachineInteger"]},
       Module[{acc = 1, i = 1}, While[i <= n, acc = acc*i; i = i + 1]; acc]]|}
  in
  List.iter
    (fun target ->
       let cf = Wolfram.function_compile ~target ~name:"factsf" (parse src) in
       (match Wolfram.call cf [ Expr.Int 20 ] with
        | Expr.Int 2432902008176640000 -> ()
        | v -> Alcotest.failf "20! wrong: %s" (Expr.to_string v));
       match Wolfram.call cf [ Expr.Int 25 ] with
       | Expr.Big b ->
         Alcotest.(check string) "25! exact via fallback"
           "15511210043330985984000000" (Wolf_base.Bignum.to_string b)
       | v -> Alcotest.failf "no fallback: %s" (Expr.to_string v))
    [ Wolfram.Threaded; (if Lazy.force jit_on then Wolfram.Jit else Wolfram.Threaded) ];
  (* the WVM also reverts (F2) *)
  let w = B.Wvm.compile (parse {|Function[{Typed[x, "MachineInteger"]}, x*x]|}) in
  match B.Wvm.call w [| Expr.Int 4611686018427387904 |] with
  | Expr.Big _ -> ()
  | v -> Alcotest.failf "WVM overflow did not revert: %s" (Expr.to_string v)

let test_part_error_soft_failure () =
  Wolfram.init ();
  B.Compiled_function.quiet := true;
  let cf =
    Wolfram.function_compile ~target:Wolfram.Threaded ~name:"oob"
      (parse
         {|Function[{Typed[v, "PackedArray"["Integer64", 1]], Typed[i, "MachineInteger"]},
            v[[i]]]|})
  in
  (* in range: compiled; out of range: falls back to the interpreter, which
     leaves the Part unevaluated (a Part head survives) *)
  Alcotest.check expr "in range" (Expr.Int 20)
    (Wolfram.call cf [ parse "{10, 20}"; Expr.Int 2 ]);
  match Wolfram.call cf [ parse "{10, 20}"; Expr.Int 5 ] with
  | exception Wolf_base.Errors.Runtime_error _ -> ()
  | v ->
    (* interpreter re-evaluation raises Part error too; accept symbolic *)
    Alcotest.(check bool) "not a bogus number" true
      (match v with Expr.Int _ -> false | _ -> true)

let test_abort_compiled () =
  Wolfram.init ();
  let src =
    {|Function[{Typed[n, "MachineInteger"]},
       Module[{i = 0}, While[i < n, i = i + 1]; i]]|}
  in
  let check_backend name entry =
    Wolf_base.Abort_signal.clear ();
    Wolf_base.Abort_signal.abort_after 5;
    (match entry () with
     | exception Wolf_base.Abort_signal.Aborted -> ()
     | _ -> Alcotest.failf "%s: loop not aborted" name);
    Wolf_base.Abort_signal.clear ()
  in
  let c = Pipeline.compile ~name:"spin" (parse src) in
  let nat = B.Native.compile c in
  check_backend "threaded" (fun () -> nat.Rtval.call [| Rtval.Int max_int |]);
  if Lazy.force jit_on then begin
    match B.Jit.compile c with
    | Ok j -> check_backend "jit" (fun () -> j.Rtval.call [| Rtval.Int max_int |])
    | Error e -> Alcotest.failf "jit: %s" e
  end;
  let w = B.Wvm.compile (parse src) in
  check_backend "wvm" (fun () -> B.Wvm.call_values w [| Rtval.Int max_int |])

let test_abort_strided_loop () =
  (* at -O1+ the counted spin loop is strip-mined: no per-iteration check
     instruction remains, and the real check runs once per chunk in the new
     outer loop.  Abort[] must still interrupt it within one stride on every
     backend, and an unaborted run must return the exact trip count. *)
  Wolfram.init ();
  let src =
    {|Function[{Typed[n, "MachineInteger"]},
       Module[{i = 0}, While[i < n, i = i + 1]; i]]|}
  in
  let c = Pipeline.compile ~name:"spin" (parse src) in
  let count pred =
    List.fold_left
      (fun acc (f : Wir.func) ->
         List.fold_left
           (fun acc (b : Wir.block) ->
              acc + List.length (List.filter pred b.Wir.instrs))
           acc f.Wir.blocks)
      0 c.Pipeline.program.Wir.funcs
  in
  Alcotest.(check int) "no per-iteration polls (strip-mined)" 0
    (count (function Wir.Abort_poll _ -> true | _ -> false));
  Alcotest.(check int) "checks: prologue + chunk header" 2
    (count (function Wir.Abort_check -> true | _ -> false));
  let stride = Options.default.Options.abort_stride in
  let run name entry =
    Wolf_base.Abort_signal.clear ();
    (match entry 10 with
     | Rtval.Int 10 -> ()
     | v -> Alcotest.failf "%s: unexpected %s" name (Rtval.type_name v)
     | exception e -> Alcotest.failf "%s: %s" name (Printexc.to_string e));
    Wolf_base.Abort_signal.clear ();
    Wolf_base.Abort_signal.abort_after 2;
    (match entry (10 * stride) with
     | exception Wolf_base.Abort_signal.Aborted -> ()
     | _ -> Alcotest.failf "%s: strided loop not aborted" name);
    Wolf_base.Abort_signal.clear ()
  in
  let nat = B.Native.compile c in
  run "threaded" (fun n -> nat.Rtval.call [| Rtval.Int n |]);
  if Lazy.force jit_on then begin
    match B.Jit.compile c with
    | Ok j -> run "jit" (fun n -> j.Rtval.call [| Rtval.Int n |])
    | Error e -> Alcotest.failf "jit: %s" e
  end;
  let w = B.Wvm.compile (parse src) in
  run "wvm" (fun n -> B.Wvm.call_values w [| Rtval.Int n |])

let test_abort_disabled_runs_to_completion () =
  let options = { Options.default with Options.abort_handling = false } in
  let c =
    Pipeline.compile ~options ~name:"spin"
      (parse
         {|Function[{Typed[n, "MachineInteger"]},
            Module[{i = 0}, While[i < n, i = i + 1]; i]]|})
  in
  let nat = B.Native.compile c in
  Wolf_base.Abort_signal.clear ();
  Wolf_base.Abort_signal.abort_after 5;
  (* without inserted checks the loop cannot observe the abort *)
  (match nat.Rtval.call [| Rtval.Int 100_000 |] with
   | Rtval.Int 100_000 -> ()
   | v -> Alcotest.failf "unexpected %s" (Rtval.type_name v));
  Wolf_base.Abort_signal.clear ()

let test_wvm_limitations () =
  (* L1: strings and function values are not representable *)
  let rejects src =
    match B.Wvm.compile (parse src) with
    | exception Wolf_base.Errors.Compile_error _ -> ()
    | _ -> Alcotest.failf "WVM accepted: %s" src
  in
  rejects {|Function[{Typed[s, "String"]}, StringLength[s]]|};
  rejects {|Function[{Typed[n, "MachineInteger"]}, Module[{f = Function[{x}, x]}, f[n]]]|};
  (* untyped arguments assume Real (§2.2) *)
  let w = B.Wvm.compile (parse "Function[{x}, x + x]") in
  match B.Wvm.call w [| Expr.Int 2 |] with
  | Expr.Real 4.0 -> ()
  | v -> Alcotest.failf "untyped arg not treated as Real: %s" (Expr.to_string v)

let test_wvm_interpreter_escape () =
  (* unsupported expressions compile to interpreter escapes, not errors *)
  Wolfram.init ();
  ignore (Wolfram.interpret "escapee[x_] := x*100");
  let w =
    B.Wvm.compile (parse {|Function[{Typed[n, "MachineInteger"]}, escapee[n] + 1]|})
  in
  Alcotest.check expr "escape result" (Expr.Int 501) (B.Wvm.call w [| Expr.Int 5 |])

let test_kernel_function_escape () =
  (* KernelFunction only reduces in compiled code; assert the value *)
  Wolfram.init ();
  ignore (Wolfram.interpret "esc9[x_] := x + 1000");
  let c =
    Pipeline.compile ~name:"esc"
      (parse
         {|Function[{Typed[n, "MachineInteger"]},
            FromExpression[KernelFunction[esc9][n]] * 2]|})
  in
  let nat = B.Native.compile c in
  Alcotest.check expr "threaded" (Expr.Int 2002)
    (Rtval.to_expr (nat.Rtval.call [| Rtval.Int 1 |]));
  if Lazy.force jit_on then
    match B.Jit.compile c with
    | Ok j ->
      Alcotest.check expr "jit" (Expr.Int 2002)
        (Rtval.to_expr (j.Rtval.call [| Rtval.Int 1 |]))
    | Error e -> Alcotest.failf "jit: %s" e

(* the paper's A.7 Mandelbrot, verbatim modulo surface syntax: compiled
   ComplexReal64 arithmetic on all backends *)
let test_complex_mandelbrot () =
  let src =
    {|Function[{Typed[pixel0, "ComplexReal64"]},
       Module[{iters = 1, maxIters = 1000, pixel = pixel0},
        While[iters < maxIters && Abs[pixel] < 2,
         pixel = pixel^2 + pixel0;
         iters++];
        iters]]|}
  in
  (* hand-computed reference on (re, im) pairs *)
  let reference (cr, ci) =
    let zr = ref cr and zi = ref ci and iters = ref 1 in
    while !iters < 1000 && Float.hypot !zr !zi < 2.0 do
      let t = (!zr *. !zr) -. (!zi *. !zi) +. cr in
      zi := (2.0 *. !zr *. !zi) +. ci;
      zr := t;
      incr iters
    done;
    !iters
  in
  let c = Pipeline.compile ~name:"cmandel" (parse src) in
  let nat = B.Native.compile c in
  let jit = if Lazy.force jit_on then Result.to_option (B.Jit.compile c) else None in
  let w = B.Wvm.compile (parse src) in
  List.iter
    (fun (cr, ci) ->
       let expected = reference (cr, ci) in
       let p = [| Rtval.Complex (cr, ci) |] in
       Alcotest.(check int)
         (Printf.sprintf "threaded (%g,%g)" cr ci)
         expected (Rtval.as_int (nat.Rtval.call p));
       (match jit with
        | Some j ->
          Alcotest.(check int)
            (Printf.sprintf "jit (%g,%g)" cr ci)
            expected (Rtval.as_int (j.Rtval.call p))
        | None -> ());
       Alcotest.(check int)
         (Printf.sprintf "wvm (%g,%g)" cr ci)
         expected (Rtval.as_int (B.Wvm.call_values w p)))
    [ (-0.5, 0.5); (0.3, 0.6); (-1.0, 0.0); (0.0, 1.01); (0.25, 0.0) ]

let test_expression_type () =
  differential ~wvm:false "symbolic plus"
    {|Function[{Typed[a, "Expression"], Typed[b, "Expression"]}, a + b]|}
    [ parse "x"; parse "Cos[y] + Sin[z]" ]

(* random straight-line integer programs, differential against the kernel *)
let gen_int_program : (string * int) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let rec gen_expr depth =
    if depth = 0 then
      oneof [ return "n"; map string_of_int (int_range (-20) 20) ]
    else begin
      let sub = gen_expr (depth - 1) in
      oneof
        [ sub;
          map2 (Printf.sprintf "(%s + %s)") sub sub;
          map2 (Printf.sprintf "(%s - %s)") sub sub;
          map2 (Printf.sprintf "(%s * %s)") sub sub;
          map2 (Printf.sprintf "Min[%s, %s]") sub sub;
          map2 (Printf.sprintf "Max[%s, %s]") sub sub;
          map2 (Printf.sprintf "If[%s > %s, 1, 2]") sub sub;
          map (Printf.sprintf "Abs[%s]") sub ]
    end
  in
  pair
    (map
       (Printf.sprintf {|Function[{Typed[n, "MachineInteger"]}, %s]|})
       (gen_expr 4))
    (int_range (-50) 50)

let prop_differential =
  QCheck2.Test.make ~name:"random programs: compiled = interpreted" ~count:150
    gen_int_program
    (fun (src, n) ->
       Wolfram.init ();
       B.Compiled_function.quiet := true;
       let fexpr = parse src in
       let reference =
         Wolf_kernel.Session.eval (Expr.Normal (fexpr, [| Expr.Int n |]))
       in
       let cf = Wolfram.function_compile ~target:Wolfram.Threaded ~name:"rand" fexpr in
       (* the wrapper's soft fallback makes overflowing cases agree too *)
       Expr.equal reference (Wolfram.call cf [ Expr.Int n ]))

(* options must never change results: -O0 vs -O1, abort on/off, inlining
   on/off all agree on random programs *)
let prop_options_semantics_preserving =
  QCheck2.Test.make ~name:"optimisation/abort/inline options preserve semantics"
    ~count:100 gen_int_program
    (fun (src, n) ->
       Wolfram.init ();
       B.Compiled_function.quiet := true;
       let fexpr = parse src in
       let variants =
         [ Options.default;
           { Options.default with Options.opt_level = 0 };
           { Options.default with Options.abort_handling = false };
           { Options.default with Options.inline_level = 0 };
           { Options.default with Options.memory_management = false } ]
       in
       let results =
         List.map
           (fun options ->
              let c = Pipeline.compile ~options ~name:"opt" fexpr in
              let f = B.Native.compile c in
              match f.Rtval.call [| Rtval.Int n |] with
              | v -> Rtval.to_expr v
              | exception Wolf_base.Errors.Runtime_error _ -> Expr.sym "Overflow")
           variants
       in
       match results with
       | first :: rest -> List.for_all (Expr.equal first) rest
       | [] -> true)

let tests =
  [ Alcotest.test_case "scalar programs" `Quick test_scalar_programs;
    Alcotest.test_case "control flow" `Quick test_control_flow_programs;
    Alcotest.test_case "strings" `Quick test_string_programs;
    Alcotest.test_case "arrays" `Quick test_array_programs;
    Alcotest.test_case "array mutation" `Quick test_array_mutation_program;
    Alcotest.test_case "mutability isolation (F5)" `Quick test_mutability_isolated;
    Alcotest.test_case "closures" `Quick test_closures;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "soft numerical failure (F2)" `Quick test_soft_failure_both_backends;
    Alcotest.test_case "part-error soft failure" `Quick test_part_error_soft_failure;
    Alcotest.test_case "abortable compiled loops (F3)" `Quick test_abort_compiled;
    Alcotest.test_case "strided polls stay abortable" `Quick test_abort_strided_loop;
    Alcotest.test_case "abort handling disabled" `Quick test_abort_disabled_runs_to_completion;
    Alcotest.test_case "WVM limitations (L1)" `Quick test_wvm_limitations;
    Alcotest.test_case "WVM interpreter escape" `Quick test_wvm_interpreter_escape;
    Alcotest.test_case "KernelFunction escape (F9)" `Quick test_kernel_function_escape;
    Alcotest.test_case "complex Mandelbrot (A.7)" `Quick test_complex_mandelbrot;
    Alcotest.test_case "Expression type (F8)" `Quick test_expression_type;
    QCheck_alcotest.to_alcotest prop_differential;
    QCheck_alcotest.to_alcotest prop_options_semantics_preserving ]
