let () =
  Wolfram.init ();
  Alcotest.run "wolfram-compiler"
    [ ("bignum", Test_bignum.tests);
      ("wexpr", Test_wexpr.tests);
      ("pattern", Test_pattern.tests);
      ("tensor", Test_tensor.tests);
      ("runtime", Test_runtime.tests);
      ("kernel", Test_kernel.tests);
      ("macro+binding", Test_macro.tests);
      ("types+inference", Test_types.tests);
      ("ir+passes", Test_passes.tests);
      ("stdlib+builtins2", Test_stdlib.tests);
      ("backends", Test_backends.tests);
      ("pipeline (pass manager + cache)", Test_pipeline.tests);
      ("wvm (the baseline)", Test_wvm.tests);
      ("features (Table 1)", Test_features.tests);
      ("appendix (A.6)", Test_appendix.tests);
      ("export (F10)", Test_export.tests);
      ("cemit (C backend + wolfc build)", Test_cemit.tests);
      ("fuzz (differential)", Test_fuzz.tests);
      ("parallel (domain safety)", Test_parallel.tests);
      ("obs (tracing/metrics/profiling)", Test_obs.tests);
      ("obs-request (request tracing + flight recorder)", Test_obs_request.tests);
      ("serve (wolfd daemon)", Test_serve.tests);
      ("tier (adaptive execution + disk cache)", Test_tier.tests);
      ("parloop (data-parallel loops)", Test_parloop.tests) ]
