(* PR 1: the instrumented pass manager, the compile cache, and the
   differential corpus.

   The corpus locks the whole pipeline down: for each representative program
   (drawn from bench/programs.ml and examples/), the kernel interpreter, the
   threaded native backend, the ocamlopt JIT (the OCaml-emit backend) and —
   where the program is representable — the WVM bytecode baseline must all
   produce equal results, at optimisation levels 0, 1 and 2, with the SSA
   linter verifying the IR after every pass run. *)

open Wolf_wexpr
open Wolf_compiler
open Wolf_runtime
module B = Wolf_backends

let parse = Parser.parse
let expr = Alcotest.testable (Fmt.of_to_string Expr.to_string) Expr.equal

let jit_on = lazy (B.Jit.available ())

(* ------------------------------------------------------------------ *)
(* Differential corpus                                                 *)

type case = {
  cname : string;
  program : string;
  args : string list;
  wvm : bool;  (* representable on the bytecode compiler (no strings/closures) *)
}

let case ?(wvm = true) cname program args = { cname; program; args; wvm }

(* a small real matrix literal for the blur/image cases *)
let matrix_src n =
  let cell i j = Printf.sprintf "%.2f" (float_of_int ((i * n + j) mod 7) /. 4.0) in
  let row i =
    "{" ^ String.concat ", " (List.init n (fun j -> cell i j)) ^ "}"
  in
  "{" ^ String.concat ", " (List.init n row) ^ "}"

let corpus =
  [ (* scalar arithmetic *)
    case "addone" {|Function[{Typed[n, "MachineInteger"]}, n + 1]|} [ "41" ];
    case "poly"
      {|Function[{Typed[n, "MachineInteger"]}, (n*3 - 4)*(n + 2) - Mod[n, 5]]|}
      [ "-23" ];
    case "real-math"
      {|Function[{Typed[x, "Real64"]}, Sin[x]*Sin[x] + Cos[x] + Sqrt[Abs[x]]]|}
      [ "0.37" ];
    case "relational"
      {|Function[{Typed[n, "MachineInteger"]},
         If[n > 2 && (n < 10 || EvenQ[n]), Min[n, 7], Max[n, -7]]]|}
      [ "5" ];
    (* loops (bench/examples loop shapes) *)
    case "gauss"
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]|}
      [ "100" ];
    case "factorial-iter"
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{acc = 1, i = 1}, While[i <= n, acc = acc*i; i = i + 1]; acc]]|}
      [ "12" ];
    case "fib-iter"
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{a = 0, b = 1, t = 0, i = 0},
          While[i < n, t = a + b; a = b; b = t; i = i + 1]; a]]|}
      [ "30" ];
    case "collatz"
      {|Function[{Typed[n0, "MachineInteger"]},
         Module[{n = n0, steps = 0},
          While[n != 1,
           If[Mod[n, 2] == 0, n = Quotient[n, 2], n = 3*n + 1];
           steps = steps + 1];
          steps]]|}
      [ "27" ];
    case "gcd-loop"
      {|Function[{Typed[a0, "MachineInteger"], Typed[b0, "MachineInteger"]},
         Module[{a = a0, b = b0, t = 0},
          While[b != 0, t = Mod[a, b]; a = b; b = t]; a]]|}
      [ "252"; "198" ];
    (* Figure 2 kernels at test scale (bench/programs.ml) *)
    case "mandelbrot" Bench_support.Programs.mandelbrot_src
      [ "-0.5"; "0.5"; "-0.5"; "0.5"; "0.25" ];
    case "fnv1a-codes" Bench_support.Programs.fnv1a_wvm_src
      [ "{72, 101, 108, 108, 111, 33}" ];
    case "histogram"
      {|Function[{Typed[data, "PackedArray"["Integer64", 1]]},
         Module[{bins = ConstantArray[0, 4], i = 1, n = Length[data], b = 0},
          While[i <= n, b = data[[i]] + 1; bins[[b]] = bins[[b]] + 1; i = i + 1];
          bins]]|}
      [ "{0, 1, 2, 3, 1, 2, 2, 0, 3}" ];
    case "blur" Bench_support.Programs.blur_src [ matrix_src 5; "5" ];
    case "dot" Bench_support.Programs.dot_src
      [ "{{1.0, 2.0}, {3.0, 4.0}}"; "{{5.0, 6.0}, {7.0, 8.0}}" ];
    (* arrays *)
    case "array-reduce"
      {|Function[{Typed[v, "PackedArray"["Integer64", 1]]},
         Total[Reverse[v]]*10 + v[[1]] + v[[-1]]]|}
      [ "{3, 1, 4, 1, 5, 9, 2, 6}" ];
    case "insertion-sort"
      {|Function[{Typed[v0, "PackedArray"["Integer64", 1]]},
         Module[{v = v0, n = Length[v0], i = 2, j = 0, key = 0},
          While[i <= n,
           key = v[[i]]; j = i - 1;
           While[j >= 1 && v[[j]] > key, v[[j + 1]] = v[[j]]; j = j - 1];
           v[[j + 1]] = key;
           i = i + 1];
          v]]|}
      [ "{5, 2, 9, 1, 7, 3, 8, 2}" ];
    (* not WVM-representable (L1): strings and function values *)
    case ~wvm:false "strings"
      {|Function[{Typed[s, "String"]}, StringLength[s <> "!"] + Total[ToCharacterCode[s]]]|}
      [ {|"hello"|} ];
    case ~wvm:false "closure"
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{f = Function[{x}, x + n]}, f[10] + f[20]]]|}
      [ "5" ] ]

let opt_levels = [ 0; 1; 2 ]

let check_case { cname; program; args; wvm } =
  Wolfram.init ();
  B.Compiled_function.quiet := true;
  let fexpr = parse program in
  let args_a = Array.of_list (List.map parse args) in
  let reference = Wolf_kernel.Session.eval (Expr.Normal (fexpr, args_a)) in
  let vals = Array.map Rtval.of_expr args_a in
  List.iter
    (fun lvl ->
       (* lint forced on: every pass run is verified by Wir_lint *)
       let options = { Options.default with Options.opt_level = lvl; lint = true } in
       let c = Pipeline.compile ~options ~name:cname fexpr in
       let native = B.Native.compile c in
       Alcotest.check expr
         (Printf.sprintf "%s/native/O%d" cname lvl)
         reference
         (Rtval.to_expr (native.Rtval.call vals));
       if Lazy.force jit_on then begin
         match B.Jit.compile c with
         | Ok j ->
           Alcotest.check expr
             (Printf.sprintf "%s/ocaml-emit-jit/O%d" cname lvl)
             reference
             (Rtval.to_expr (j.Rtval.call vals))
         | Error e -> Alcotest.failf "%s/O%d: jit compile failed: %s" cname lvl e
       end)
    opt_levels;
  if wvm then begin
    let w = B.Wvm.compile fexpr in
    Alcotest.check expr (cname ^ "/wvm") reference (B.Wvm.call w args_a)
  end

let corpus_tests =
  List.map
    (fun c ->
       Alcotest.test_case (Printf.sprintf "corpus: %s" c.cname) `Quick (fun () ->
           check_case c))
    corpus

(* ------------------------------------------------------------------ *)
(* Compile cache correctness                                           *)

let simple_src = {|Function[{Typed[n, "MachineInteger"]}, n*n + 7]|}

let cache_stats () = Wolfram.compile_cache_stats ()

let test_cache_hit_identical () =
  Wolfram.init ();
  Wolfram.compile_cache_clear ();
  let cf1 = Wolfram.function_compile ~target:Wolfram.Threaded (parse simple_src) in
  let s1 = cache_stats () in
  Alcotest.(check (pair int int)) "first compile: 1 miss, 0 hits" (0, 1)
    (s1.Compile_cache.hits, s1.Compile_cache.misses);
  let cf2 = Wolfram.function_compile ~target:Wolfram.Threaded (parse simple_src) in
  let s2 = cache_stats () in
  Alcotest.(check (pair int int)) "second compile: 1 hit, 1 miss" (1, 1)
    (s2.Compile_cache.hits, s2.Compile_cache.misses);
  Alcotest.(check int) "every lookup is a hit or a miss" s2.Compile_cache.lookups
    (s2.Compile_cache.hits + s2.Compile_cache.misses);
  (* the hit returns the identical compiled function, program included *)
  Alcotest.(check bool) "physically identical compiled function" true (cf1 == cf2);
  (match Wolfram.pipeline_of cf1, Wolfram.pipeline_of cf2 with
   | Some c1, Some c2 ->
     Alcotest.(check bool) "identical program" true
       (c1.Pipeline.program == c2.Pipeline.program)
   | _ -> Alcotest.fail "pipelines missing");
  Alcotest.check expr "identical result" (Expr.Int 151)
    (Wolfram.call cf2 [ Expr.Int 12 ])

let test_cache_miss_on_changes () =
  Wolfram.init ();
  Wolfram.compile_cache_clear ();
  let compile ?(options = Options.default) ?(target = Wolfram.Threaded) src =
    ignore (Wolfram.function_compile ~options ~target (parse src))
  in
  compile simple_src;
  compile simple_src;
  let s = cache_stats () in
  Alcotest.(check (pair int int)) "warm" (1, 1) (s.Compile_cache.hits, s.Compile_cache.misses);
  (* changing the source text misses *)
  compile {|Function[{Typed[n, "MachineInteger"]}, n*n + 8]|};
  Alcotest.(check int) "source change misses" 2 (cache_stats ()).Compile_cache.misses;
  (* changing any Options.t field misses *)
  List.iter
    (fun options -> compile ~options simple_src)
    [ { Options.default with Options.abort_handling = false };
      { Options.default with Options.opt_level = 2 };
      { Options.default with Options.inline_level = 0 };
      { Options.default with Options.memory_management = false };
      { Options.default with Options.static_constants = false };
      { Options.default with Options.lint = false };
      { Options.default with Options.self_name = Some "self" };
      { Options.default with Options.target_system = "C" } ];
    Alcotest.(check int) "each option change misses" 10
      (cache_stats ()).Compile_cache.misses;
  (* changing the target misses *)
  compile ~target:Wolfram.Bytecode simple_src;
  Alcotest.(check int) "target change misses" 11 (cache_stats ()).Compile_cache.misses;
  (* and all of those were misses, not hits *)
  Alcotest.(check int) "hits unchanged" 1 (cache_stats ()).Compile_cache.hits;
  Alcotest.(check int) "no evictions" 0 (cache_stats ()).Compile_cache.evictions

let test_cache_bypass () =
  Wolfram.init ();
  Wolfram.compile_cache_clear ();
  (* use_cache = false bypasses: no counter movement, fresh result *)
  let options = { Options.default with Options.use_cache = false } in
  let cf1 = Wolfram.function_compile ~options ~target:Wolfram.Threaded (parse simple_src) in
  let cf2 = Wolfram.function_compile ~options ~target:Wolfram.Threaded (parse simple_src) in
  let s = cache_stats () in
  Alcotest.(check (pair int int)) "bypass leaves counters untouched" (0, 0)
    (s.Compile_cache.hits, s.Compile_cache.misses);
  Alcotest.(check bool) "fresh compilations" true (not (cf1 == cf2));
  (* user passes bypass the cache too *)
  let up = { Pipeline.pass_name = "noop"; pass_run = (fun _ -> ()) } in
  ignore
    (Wolfram.function_compile ~user_passes:[ up ] ~target:Wolfram.Threaded
       (parse simple_src));
  let s = cache_stats () in
  Alcotest.(check (pair int int)) "user passes bypass" (0, 0)
    (s.Compile_cache.hits, s.Compile_cache.misses)

let test_cache_lru_eviction () =
  (* unit-level: a capacity-2 cache evicts least-recently-used *)
  let c : int Compile_cache.t = Compile_cache.create ~capacity:2 () in
  let k n = Printf.sprintf "key%d" n in
  Compile_cache.add c (k 1) 1;
  Compile_cache.add c (k 2) 2;
  Alcotest.(check (option int)) "k1 resident" (Some 1) (Compile_cache.find c (k 1));
  (* k2 is now LRU; inserting k3 evicts it *)
  Compile_cache.add c (k 3) 3;
  Alcotest.(check int) "one eviction" 1 (Compile_cache.stats c).Compile_cache.evictions;
  Alcotest.(check (option int)) "k2 evicted" None (Compile_cache.find c (k 2));
  Alcotest.(check (option int)) "k1 survives" (Some 1) (Compile_cache.find c (k 1));
  Alcotest.(check (option int)) "k3 resident" (Some 3) (Compile_cache.find c (k 3));
  let s = Compile_cache.stats c in
  Alcotest.(check int) "hits" 3 s.Compile_cache.hits;
  Alcotest.(check int) "misses" 1 s.Compile_cache.misses;
  Alcotest.(check int) "entries" 2 s.Compile_cache.entries;
  Alcotest.(check int) "lookups = hits + misses" s.Compile_cache.lookups
    (s.Compile_cache.hits + s.Compile_cache.misses);
  Compile_cache.clear c;
  let s = Compile_cache.stats c in
  Alcotest.(check int) "cleared hits" 0 s.Compile_cache.hits;
  Alcotest.(check int) "cleared lookups" 0 s.Compile_cache.lookups;
  Alcotest.(check int) "cleared entries" 0 s.Compile_cache.entries

(* ------------------------------------------------------------------ *)
(* Pass-manager observability                                          *)

let test_pass_stats () =
  let fexpr = parse {|Function[{Typed[n, "MachineInteger"]}, (n + 0)*1 + 2*3]|} in
  let c = Pipeline.compile ~name:"stats" fexpr in
  let names = List.map (fun s -> s.Pass_manager.st_pass) c.Pipeline.stats in
  List.iter
    (fun expected ->
       Alcotest.(check bool) ("stat recorded for " ^ expected) true
         (List.mem expected names))
    [ "macro+binding+lower"; "type-inference"; "function-resolution"; "fold";
      "simplify-cfg"; "cse"; "licm"; "dce"; "bparam-elim"; "inline"; "mutability";
      "abort-insertion"; "abort-stride"; "memory-management"; "ground-check" ];
  List.iter
    (fun (s : Pass_manager.stat) ->
       (* checkpoint-only rows (e.g. "lower") exist to attribute verify
          time and legitimately have zero runs *)
       Alcotest.(check bool) (s.st_pass ^ " ran or was verified") true
         (s.st_runs >= 1 || s.st_verify > 0.0 || s.st_pass = "lower");
       Alcotest.(check bool) (s.st_pass ^ " time >= 0") true (s.st_time >= 0.0))
    c.Pipeline.stats;
  (* front-end stages have no IR delta; WIR passes do *)
  let stat name = List.find (fun s -> s.Pass_manager.st_pass = name) c.Pipeline.stats in
  Alcotest.(check bool) "front has no delta" true
    ((stat "macro+binding+lower").Pass_manager.st_delta = None);
  (match (stat "fold").Pass_manager.st_delta with
   | Some d ->
     (* 2*3 folds away: the fixpoint shrinks the instruction count *)
     Alcotest.(check bool) "fold shrinks instrs" true
       (d.Pass_manager.d_instrs_after < d.Pass_manager.d_instrs_before)
   | None -> Alcotest.fail "fold has no delta");
  (* optimisation reduces the final instruction count vs -O0 *)
  let c0 =
    Pipeline.compile ~options:{ Options.default with Options.opt_level = 0 }
      ~name:"stats0" fexpr
  in
  Alcotest.(check bool) "O1 program is no bigger than O0" true
    (Pass_manager.instr_count c.Pipeline.program
     <= Pass_manager.instr_count c0.Pipeline.program);
  (* legacy timings view stays populated, one entry per pass run *)
  Alcotest.(check bool) "timings populated" true (List.length c.Pipeline.timings > 0)

let test_dump_after_hook () =
  let fired = ref [] in
  let old = !Pipeline.dump_hook in
  Pipeline.dump_hook := (fun name _ -> fired := name :: !fired);
  Fun.protect
    ~finally:(fun () -> Pipeline.dump_hook := old)
    (fun () ->
       ignore
         (Pipeline.compile
            ~options:{ Options.default with Options.dump_after = [ "dce"; "lower" ] }
            ~name:"dump"
            (parse {|Function[{Typed[n, "MachineInteger"]}, n + 1]|})));
  Alcotest.(check bool) "dce dump fired" true (List.mem "dce" !fired);
  Alcotest.(check bool) "lower dump fired" true (List.mem "lower" !fired);
  Alcotest.(check bool) "undumped pass quiet" false (List.mem "mutability" !fired)

let test_user_pass_stats () =
  let seen = ref 0 in
  let up =
    { Pipeline.pass_name = "probe"; pass_run = (fun _ -> incr seen) }
  in
  let c =
    Pipeline.compile ~user_passes:[ up ] ~name:"user"
      (parse {|Function[{Typed[n, "MachineInteger"]}, n + 1]|})
  in
  Alcotest.(check int) "user pass ran once" 1 !seen;
  Alcotest.(check bool) "user pass instrumented" true
    (List.exists (fun s -> s.Pass_manager.st_pass = "user:probe") c.Pipeline.stats)

let test_opt_level2 () =
  (* -O2 widens inlining; results must not change (corpus covers this too) *)
  let fexpr =
    parse
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{s = 0, i = 1}, While[i <= n, s = s + Max[i, 2]*Min[i, 9]; i = i + 1]; s]]|}
  in
  let run lvl =
    let options = { Options.default with Options.opt_level = lvl } in
    let c = Pipeline.compile ~options ~name:"lvl" fexpr in
    Rtval.to_expr ((B.Native.compile c).Rtval.call [| Rtval.Int 20 |])
  in
  let r0 = run 0 in
  Alcotest.check expr "O1 = O0" r0 (run 1);
  Alcotest.check expr "O2 = O0" r0 (run 2)

let tests =
  corpus_tests
  @ [ Alcotest.test_case "cache: identical compile hits" `Quick test_cache_hit_identical;
      Alcotest.test_case "cache: any change misses" `Quick test_cache_miss_on_changes;
      Alcotest.test_case "cache: bypass paths" `Quick test_cache_bypass;
      Alcotest.test_case "cache: LRU eviction counters" `Quick test_cache_lru_eviction;
      Alcotest.test_case "pass manager: stats and deltas" `Quick test_pass_stats;
      Alcotest.test_case "pass manager: dump-after hook" `Quick test_dump_after_hook;
      Alcotest.test_case "pass manager: user pass stats" `Quick test_user_pass_stats;
      Alcotest.test_case "opt level 2 preserves semantics" `Quick test_opt_level2 ]
