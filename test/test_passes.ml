(* IR analyses and passes (S11–S13, S16–S17): the SSA linter, CFG analyses,
   classical optimisations, and the language-obligation passes. *)

open Wolf_wexpr
open Wolf_compiler

let parse = Parser.parse

let compile ?(options = Options.default) ?type_env src =
  Pipeline.compile ~options ?type_env ~name:"p" (parse src)

let count_instrs pred (prog : Wir.program) =
  List.fold_left
    (fun acc f ->
       List.fold_left
         (fun acc (b : Wir.block) ->
            acc + List.length (List.filter pred b.Wir.instrs))
         acc f.Wir.blocks)
    0 prog.Wir.funcs

let is_call base = function
  | Wir.Call { callee = Wir.Resolved { base = b; _ }; _ } -> b = base
  | _ -> false

let fn_src =
  {|Function[{Typed[n, "MachineInteger"]},
     Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]|}

(* ---------------- linter ---------------- *)

let test_lint_accepts_pipeline_output () =
  let c = compile fn_src in
  match Wir_lint.check_program c.Pipeline.program with
  | Ok () -> ()
  | Error es -> Alcotest.failf "lint: %s" (String.concat "; " es)

let test_lint_catches_double_def () =
  let v = Wir.fresh_var ~ty:Types.int64 () in
  let blk =
    { Wir.label = 0; bparams = [||];
      instrs =
        [ Wir.Copy { dst = v; src = Wir.Oconst (Wir.Cint 1) };
          Wir.Copy { dst = v; src = Wir.Oconst (Wir.Cint 2) } ];
      term = Wir.Return (Wir.Ovar v) }
  in
  let f = { Wir.fname = "bad"; fparams = [||]; ret_ty = Some Types.int64;
            blocks = [ blk ]; finline = false; fsource = None } in
  match Wir_lint.check_func f with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double definition accepted"

let test_lint_catches_use_before_def () =
  let v = Wir.fresh_var ~ty:Types.int64 () in
  let w = Wir.fresh_var ~ty:Types.int64 () in
  let blk =
    { Wir.label = 0; bparams = [||];
      instrs = [ Wir.Copy { dst = w; src = Wir.Ovar v } ];
      term = Wir.Return (Wir.Ovar w) }
  in
  let f = { Wir.fname = "bad"; fparams = [||]; ret_ty = Some Types.int64;
            blocks = [ blk ]; finline = false; fsource = None } in
  match Wir_lint.check_func f with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "use before definition accepted"

(* ---------------- full verifier on malformed IR ---------------- *)

let mk_f ?(fparams = [||]) ?(ret_ty = Some Types.int64) blocks =
  { Wir.fname = "bad"; fparams; ret_ty; blocks; finline = false; fsource = None }

let expect_reject what f =
  match Wir_verify.check_func f with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "verifier accepted %s" what

let expect_error_mentions what needle f =
  match Wir_verify.check_func f with
  | Error es ->
    let contains hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s error mentions %S (got: %s)" what needle
         (String.concat "; " es))
      true
      (List.exists contains es)
  | Ok () -> Alcotest.failf "verifier accepted %s" what

let test_verify_use_before_def () =
  (* %v used in b0 but only defined in b1, which runs after the use *)
  let v = Wir.fresh_var ~ty:Types.int64 () in
  let w = Wir.fresh_var ~ty:Types.int64 () in
  let f =
    mk_f
      [ { Wir.label = 0; bparams = [||];
          instrs = [ Wir.Copy { dst = w; src = Wir.Ovar v } ];
          term = Wir.Jump { target = 1; jargs = [||] } };
        { Wir.label = 1; bparams = [||];
          instrs = [ Wir.Copy { dst = v; src = Wir.Oconst (Wir.Cint 1) } ];
          term = Wir.Return (Wir.Ovar w) } ]
  in
  expect_error_mentions "use before def" "uses" f

let test_verify_bad_jump_arity () =
  (* b0 passes one argument to a block declaring two parameters *)
  let p1 = Wir.fresh_var ~ty:Types.int64 () in
  let p2 = Wir.fresh_var ~ty:Types.int64 () in
  let f =
    mk_f
      [ { Wir.label = 0; bparams = [||]; instrs = [];
          term = Wir.Jump { target = 1; jargs = [| Wir.Oconst (Wir.Cint 1) |] } };
        { Wir.label = 1; bparams = [| p1; p2 |]; instrs = [];
          term = Wir.Return (Wir.Ovar p1) } ]
  in
  expect_error_mentions "bad jump arity" "expects" f

let test_verify_jump_type_mismatch () =
  (* an integer constant flows into a Real64 block parameter *)
  let p = Wir.fresh_var ~ty:Types.real64 () in
  let f =
    mk_f ~ret_ty:(Some Types.real64)
      [ { Wir.label = 0; bparams = [||]; instrs = [];
          term = Wir.Jump { target = 1; jargs = [| Wir.Oconst (Wir.Cint 3) |] } };
        { Wir.label = 1; bparams = [| p |]; instrs = [];
          term = Wir.Return (Wir.Ovar p) } ]
  in
  expect_error_mentions "jump type mismatch" "type" f

let test_verify_copy_type_mismatch () =
  (* TWIR instruction operand check: Copy of a String into an Integer64 *)
  let d = Wir.fresh_var ~ty:Types.int64 () in
  let f =
    mk_f
      [ { Wir.label = 0; bparams = [||];
          instrs = [ Wir.Copy { dst = d; src = Wir.Oconst (Wir.Cstr "s") } ];
          term = Wir.Return (Wir.Ovar d) } ]
  in
  expect_error_mentions "copy type mismatch" "copy" f

let test_verify_orphan_block () =
  let f =
    mk_f
      [ { Wir.label = 0; bparams = [||]; instrs = [];
          term = Wir.Return (Wir.Oconst (Wir.Cint 0)) };
        { Wir.label = 7; bparams = [||]; instrs = [];
          term = Wir.Return (Wir.Oconst (Wir.Cint 1)) } ]
  in
  expect_error_mentions "orphan block" "orphan" f

let test_verify_bad_terminator () =
  (* branch on a string condition, arms targeting a missing block *)
  let f =
    mk_f
      [ { Wir.label = 0; bparams = [||]; instrs = [];
          term =
            Wir.Branch
              { cond = Wir.Oconst (Wir.Cstr "not a bool");
                if_true = { target = 9; jargs = [||] };
                if_false = { target = 9; jargs = [||] } } } ]
  in
  expect_error_mentions "bad terminator" "condition" f;
  expect_error_mentions "bad terminator" "missing block" f;
  (* jumping back to the entry block is malformed too *)
  let g =
    mk_f
      [ { Wir.label = 0; bparams = [||]; instrs = [];
          term = Wir.Jump { target = 0; jargs = [||] } } ]
  in
  expect_error_mentions "jump to entry" "entry" g

let test_verify_return_type_mismatch () =
  let f =
    mk_f ~ret_ty:(Some Types.int64)
      [ { Wir.label = 0; bparams = [||]; instrs = [];
          term = Wir.Return (Wir.Oconst (Wir.Creal 1.5)) } ]
  in
  expect_error_mentions "return type mismatch" "declared" f

let test_verify_load_argument_range () =
  let d = Wir.fresh_var ~ty:Types.int64 () in
  let f =
    mk_f
      [ { Wir.label = 0; bparams = [||];
          instrs = [ Wir.Load_argument { dst = d; index = 2 } ];
          term = Wir.Return (Wir.Ovar d) } ]
  in
  expect_error_mentions "load-argument range" "out of range" f

let test_verify_call_arity_program () =
  (* program-level: a Func call with the wrong argument count *)
  let d = Wir.fresh_var ~ty:Types.int64 () in
  let callee_param = Wir.fresh_var ~ty:Types.int64 () in
  let callee =
    { Wir.fname = "helper"; fparams = [| callee_param |]; ret_ty = Some Types.int64;
      blocks =
        [ { Wir.label = 0; bparams = [||];
            instrs = [ Wir.Load_argument { dst = callee_param; index = 0 } ];
            term = Wir.Return (Wir.Ovar callee_param) } ];
      finline = false; fsource = None }
  in
  let main =
    mk_f
      [ { Wir.label = 0; bparams = [||];
          instrs = [ Wir.Call { dst = d; callee = Wir.Func "helper"; args = [||] } ];
          term = Wir.Return (Wir.Ovar d) } ]
  in
  let prog = { Wir.funcs = [ main; callee ]; pmeta = [] } in
  (match Wir_verify.check_program prog with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "verifier accepted a call-arity mismatch");
  ignore (expect_reject : string -> Wir.func -> unit)

let test_verify_accepts_every_corpus_stage () =
  (* sanity: the verifier accepts the pipeline's final IR for a
     representative program at every opt level *)
  List.iter
    (fun lvl ->
       let options = { Options.default with Options.opt_level = lvl } in
       let c = compile ~options fn_src in
       match Wir_verify.check_program c.Pipeline.program with
       | Ok () -> ()
       | Error es -> Alcotest.failf "O%d: %s" lvl (String.concat "; " es))
    [ 0; 1; 2 ]

(* ---------------- CFG analyses ---------------- *)

let test_loop_headers () =
  (* the counted source loop is strip-mined at -O1+, so the compiled CFG has
     the original header plus the outer chunk-loop header *)
  let c = compile fn_src in
  let main = Wir.main c.Pipeline.program in
  let cfg = Analysis.build_cfg main in
  let headers = Analysis.loop_headers main cfg in
  Alcotest.(check int) "inner + chunk loop" 2 (List.length headers)

let test_nested_loop_headers () =
  let c =
    compile
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{s = 0, i = 1, j = 1},
          While[i <= n, j = 1; While[j <= n, s = s + 1; j = j + 1]; i = i + 1];
          s]]|}
  in
  let main = Wir.main c.Pipeline.program in
  let cfg = Analysis.build_cfg main in
  (* outer + inner + the inner loop's chunk loop from strip-mining *)
  Alcotest.(check int) "three loops" 3 (List.length (Analysis.loop_headers main cfg))

let test_dominance () =
  let c = compile fn_src in
  let main = Wir.main c.Pipeline.program in
  let cfg = Analysis.build_cfg main in
  let entry = (Wir.entry main).Wir.label in
  List.iter
    (fun (b : Wir.block) ->
       Alcotest.(check bool)
         (Printf.sprintf "entry dominates b%d" b.Wir.label)
         true
         (Analysis.dominates cfg entry b.Wir.label))
    main.Wir.blocks

(* ---------------- loop structure on hand-built CFGs ---------------- *)

let mk_func blocks =
  { Wir.fname = "cfg"; fparams = [||]; ret_ty = Some Types.int64;
    blocks; finline = false; fsource = None }

let jmp target = Wir.Jump { target; jargs = [||] }

let br if_true if_false =
  Wir.Branch { cond = Wir.Oconst (Wir.Cint 0);
               if_true = { target = if_true; jargs = [||] };
               if_false = { target = if_false; jargs = [||] } }

let blk label term = { Wir.label; bparams = [||]; instrs = []; term }

let ret = Wir.Return (Wir.Oconst (Wir.Cint 0))

let test_natural_loops_nested () =
  let f =
    mk_func
      [ blk 0 (jmp 1);
        blk 1 (br 2 5);  (* outer header *)
        blk 2 (br 3 4);  (* inner header *)
        blk 3 (jmp 2);   (* inner latch *)
        blk 4 (jmp 1);   (* outer latch *)
        blk 5 ret ]
  in
  let cfg = Analysis.build_cfg f in
  let loops = Analysis.natural_loops f cfg in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let outer = List.find (fun (l : Analysis.loop) -> l.Analysis.lheader = 1) loops in
  let inner = List.find (fun (l : Analysis.loop) -> l.Analysis.lheader = 2) loops in
  Alcotest.(check (list int)) "outer body" [ 1; 2; 3; 4 ] outer.Analysis.lbody;
  Alcotest.(check (list int)) "inner body" [ 2; 3 ] inner.Analysis.lbody;
  Alcotest.(check (list int)) "outer latches" [ 4 ] outer.Analysis.latches;
  Alcotest.(check int) "outer depth" 1 outer.Analysis.ldepth;
  Alcotest.(check int) "inner depth" 2 inner.Analysis.ldepth;
  Alcotest.(check bool) "inner innermost" true (Analysis.innermost loops inner);
  Alcotest.(check bool) "outer not innermost" false (Analysis.innermost loops outer)

let test_retreating_edge_not_loop () =
  (* diamond with a retreating edge whose target does not dominate the
     source: no natural loop *)
  let f =
    mk_func
      [ blk 0 (br 1 2);
        blk 1 (jmp 3);
        blk 2 (jmp 3);
        blk 3 (br 1 4);  (* 3 -> 1 retreats but 1 does not dominate 3 *)
        blk 4 ret ]
  in
  let cfg = Analysis.build_cfg f in
  Alcotest.(check int) "no natural loops" 0
    (List.length (Analysis.natural_loops f cfg))

let test_self_loop () =
  let f = mk_func [ blk 0 (jmp 1); blk 1 (br 1 2); blk 2 ret ] in
  let cfg = Analysis.build_cfg f in
  let loops = Analysis.natural_loops f cfg in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check (list int)) "body is just the header" [ 1 ] l.Analysis.lbody;
  Alcotest.(check (list int)) "self latch" [ 1 ] l.Analysis.latches;
  Alcotest.(check int) "depth" 1 l.Analysis.ldepth;
  Alcotest.(check bool) "innermost" true (Analysis.innermost loops l)

let test_preheader_reuse_and_insert () =
  (* a unique fall-through entry predecessor is reused as the preheader *)
  let f = mk_func [ blk 0 (jmp 1); blk 1 (br 1 2); blk 2 ret ] in
  Alcotest.(check int) "entry pred reused" 0
    (Analysis.ensure_preheader f ~header:1 ~latches:[ 1 ]);
  Alcotest.(check int) "no block added" 3 (List.length f.Wir.blocks);
  (* entry through a branch arm: the edge must be split with a fresh block
     that forwards the header's parameters *)
  let v = Wir.fresh_var ~ty:Types.int64 () in
  let g =
    mk_func
      [ { Wir.label = 0; bparams = [||]; instrs = [];
          term =
            Wir.Branch
              { cond = Wir.Oconst (Wir.Cint 0);
                if_true = { target = 1; jargs = [| Wir.Oconst (Wir.Cint 1) |] };
                if_false = { target = 2; jargs = [||] } } };
        { Wir.label = 1; bparams = [| v |]; instrs = [];
          term =
            Wir.Branch
              { cond = Wir.Oconst (Wir.Cint 0);
                if_true = { target = 1; jargs = [| Wir.Ovar v |] };
                if_false = { target = 2; jargs = [||] } } };
        blk 2 ret ]
  in
  let pre = Analysis.ensure_preheader g ~header:1 ~latches:[ 1 ] in
  Alcotest.(check int) "fresh label" 3 pre;
  Alcotest.(check int) "block inserted" 4 (List.length g.Wir.blocks);
  (match (Wir.find_block g pre).Wir.term with
   | Wir.Jump { target; jargs } ->
     Alcotest.(check int) "preheader jumps to header" 1 target;
     Alcotest.(check int) "forwards one param" 1 (Array.length jargs)
   | _ -> Alcotest.fail "preheader does not end in a jump");
  (match (Wir.find_block g 0).Wir.term with
   | Wir.Branch { if_true = { target; _ }; if_false = { target = other; _ }; _ } ->
     Alcotest.(check int) "entry edge retargeted" pre target;
     Alcotest.(check int) "exit edge untouched" 2 other
   | _ -> Alcotest.fail "entry terminator changed shape")

(* ---------------- optimisations ---------------- *)

let test_constant_folding () =
  (* 2 + 3*4 folds away entirely: no arithmetic calls should remain *)
  let c = compile {|Function[{Typed[n, "MachineInteger"]}, n + (2 + 3*4)]|} in
  let adds = count_instrs (is_call "checked_binary_plus") c.Pipeline.program in
  let muls = count_instrs (is_call "checked_binary_times") c.Pipeline.program in
  Alcotest.(check int) "one residual add" 1 adds;
  Alcotest.(check int) "no multiplies" 0 muls

let test_dead_branch_deletion () =
  let c = compile {|Function[{Typed[n, "MachineInteger"]}, If[2 > 1, n, n*n]]|} in
  let main = Wir.main c.Pipeline.program in
  Alcotest.(check int) "collapsed to one block" 1 (List.length main.Wir.blocks);
  Alcotest.(check int) "multiply eliminated" 0
    (count_instrs (is_call "checked_binary_times") c.Pipeline.program)

let test_cse () =
  let c =
    compile {|Function[{Typed[x, "Real64"]}, (x*x + 1.0) + (x*x + 2.0)]|}
  in
  Alcotest.(check int) "x*x computed once" 1
    (count_instrs (is_call "binary_times") c.Pipeline.program)

let test_dce () =
  let c =
    compile
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{unused = n*n*n, kept = n + 1}, kept]]|}
  in
  Alcotest.(check int) "dead cube removed" 0
    (count_instrs (is_call "checked_binary_times") c.Pipeline.program)

let loop_body_labels main =
  let cfg = Analysis.build_cfg main in
  let loops = Analysis.natural_loops main cfg in
  List.concat_map (fun (l : Analysis.loop) -> l.Analysis.lbody) loops

let count_in_labels pred (main : Wir.func) labels =
  List.fold_left
    (fun acc l ->
       acc
       + List.length (List.filter pred (Wir.find_block main l).Wir.instrs))
    0 labels

let test_licm_hoists_invariant () =
  (* x*x does not depend on the induction variable: LICM moves it out *)
  let c =
    compile
      {|Function[{Typed[n, "MachineInteger"], Typed[x, "Real64"]},
         Module[{s = 0.0, i = 1},
          While[i <= n, s = s + x*x; i = i + 1]; s]]|}
  in
  let main = Wir.main c.Pipeline.program in
  let body = loop_body_labels main in
  Alcotest.(check bool) "still has a loop" true (body <> []);
  Alcotest.(check int) "multiply hoisted out of the loop" 0
    (count_in_labels (is_call "binary_times") main body);
  Alcotest.(check int) "multiply still computed somewhere" 1
    (count_instrs (is_call "binary_times") c.Pipeline.program)

let test_licm_disabled () =
  let options = { Options.default with Options.loop_opts = false } in
  let c =
    compile ~options
      {|Function[{Typed[n, "MachineInteger"], Typed[x, "Real64"]},
         Module[{s = 0.0, i = 1},
          While[i <= n, s = s + x*x; i = i + 1]; s]]|}
  in
  let main = Wir.main c.Pipeline.program in
  let body = loop_body_labels main in
  Alcotest.(check bool) "multiply stays in the loop" true
    (count_in_labels (is_call "binary_times") main body >= 1)

let test_bounds_check_elimination () =
  (* i walks 1..Length[v]: the Part access needs no range check *)
  let c =
    compile
      {|Function[{Typed[v, "PackedArray"["Integer64", 1]]},
         Module[{s = 0, i = 1},
          While[i <= Length[v], s = s + v[[i]]; i = i + 1]; s]]|}
  in
  Alcotest.(check bool) "unchecked access emitted" true
    (count_instrs (is_call "part_get_1_unchecked") c.Pipeline.program >= 1);
  Alcotest.(check int) "no checked access left" 0
    (count_instrs (is_call "part_get_1") c.Pipeline.program)

let test_optimization_off () =
  let options = { Options.default with Options.opt_level = 0 } in
  let c = compile ~options {|Function[{Typed[n, "MachineInteger"]}, n + (2 + 3*4)]|} in
  Alcotest.(check bool) "unoptimised keeps the multiply" true
    (count_instrs (is_call "checked_binary_times") c.Pipeline.program >= 1)

let test_inlining_of_declared_function () =
  let env = Type_env.create ~parent:(Type_env.builtin ()) "t" in
  Type_env.declare_wolfram env "TinyTwice"
    ~spec:(parse {|TypeSpecifier[{"Integer64"} -> "Integer64"]|})
    ~body:(parse "Function[{x}, x + x]");
  let c =
    compile ~type_env:env {|Function[{Typed[n, "MachineInteger"]}, TinyTwice[n] + 1]|}
  in
  (* after inlining no Func call to the instance remains in main *)
  let main = Wir.main c.Pipeline.program in
  let calls_instance =
    List.exists
      (fun (b : Wir.block) ->
         List.exists
           (function Wir.Call { callee = Wir.Func _; _ } -> true | _ -> false)
           b.Wir.instrs)
      main.Wir.blocks
  in
  Alcotest.(check bool) "instance inlined into caller" false calls_instance

(* ---------------- obligation passes ---------------- *)

let has_abort (b : Wir.block) =
  List.exists (function Wir.Abort_check -> true | _ -> false) b.Wir.instrs

let has_poll (b : Wir.block) =
  List.exists (function Wir.Abort_poll _ -> true | _ -> false) b.Wir.instrs

let test_abort_placement () =
  let c = compile fn_src in
  let main = Wir.main c.Pipeline.program in
  let cfg = Analysis.build_cfg main in
  let loops = Analysis.natural_loops main cfg in
  let entry = Wir.entry main in
  Alcotest.(check bool) "prologue check" true (has_abort entry);
  (* the single counted loop is innermost and call-free, so at -O1+ it is
     strip-mined: the hot header carries no check at all and the new outer
     chunk-loop header runs the immediate check once per chunk *)
  Alcotest.(check int) "inner + chunk loop" 2 (List.length loops);
  let inner = List.find (fun l -> Analysis.innermost loops l) loops in
  let chunk =
    List.find (fun (l : Analysis.loop) -> l.lheader <> inner.Analysis.lheader) loops
  in
  let inner_hdr = Wir.find_block main inner.Analysis.lheader in
  Alcotest.(check bool) "hot header check-free" false
    (has_abort inner_hdr || has_poll inner_hdr);
  Alcotest.(check bool) "chunk header checks" true
    (has_abort (Wir.find_block main chunk.Analysis.lheader));
  Alcotest.(check int) "checks: prologue + chunk header" 2
    (count_instrs (function Wir.Abort_check -> true | _ -> false) c.Pipeline.program);
  Alcotest.(check int) "no polls on a counted loop" 0
    (count_instrs (function Wir.Abort_poll _ -> true | _ -> false) c.Pipeline.program)

let test_abort_poll_fallback () =
  (* a step-2 loop is not counted (strip-mining requires +1 steps), so its
     header falls back to the strided countdown poll *)
  let c =
    compile
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 2]; s]]|}
  in
  let main = Wir.main c.Pipeline.program in
  let cfg = Analysis.build_cfg main in
  let loops = Analysis.natural_loops main cfg in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let hdr = Wir.find_block main (List.hd loops).Analysis.lheader in
  Alcotest.(check bool) "header polls" true (has_poll hdr);
  Alcotest.(check int) "one immediate check (prologue)" 1
    (count_instrs (function Wir.Abort_check -> true | _ -> false) c.Pipeline.program)

let test_abort_stride_disabled () =
  (* stride 1 disables coalescing: every header keeps the immediate check *)
  let options = { Options.default with Options.abort_stride = 1 } in
  let c = compile ~options fn_src in
  let main = Wir.main c.Pipeline.program in
  let cfg = Analysis.build_cfg main in
  let headers = Analysis.loop_headers main cfg in
  List.iter
    (fun l ->
       Alcotest.(check bool)
         (Printf.sprintf "loop header b%d immediate" l)
         true
         (has_abort (Wir.find_block main l)))
    headers;
  Alcotest.(check int) "no polls" 0
    (count_instrs (function Wir.Abort_poll _ -> true | _ -> false) c.Pipeline.program)

let test_abort_stride_outer_keeps_check () =
  (* only innermost call-free loops are coalesced; the outer header stays
     immediate.  The counted inner loop is strip-mined, so the compiled CFG
     has three loops: outer (immediate check), the inner loop's chunk loop
     (immediate check, once per chunk) and the check-free hot loop. *)
  let c =
    compile
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{s = 0, i = 1, j = 1},
          While[i <= n, j = 1; While[j <= n, s = s + 1; j = j + 1]; i = i + 1];
          s]]|}
  in
  let main = Wir.main c.Pipeline.program in
  let cfg = Analysis.build_cfg main in
  let loops = Analysis.natural_loops main cfg in
  Alcotest.(check int) "three loops" 3 (List.length loops);
  List.iter
    (fun (l : Analysis.loop) ->
       let hdr = Wir.find_block main l.Analysis.lheader in
       if Analysis.innermost loops l then
         Alcotest.(check bool) "hot header check-free" false
           (has_abort hdr || has_poll hdr)
       else
         Alcotest.(check bool) "enclosing header checks" true (has_abort hdr))
    loops

let test_abort_disabled () =
  let options = { Options.default with Options.abort_handling = false } in
  let c = compile ~options fn_src in
  Alcotest.(check int) "no checks" 0
    (count_instrs (function Wir.Abort_check -> true | _ -> false) c.Pipeline.program)

let test_memory_pass_balance () =
  let c =
    compile
      {|Function[{Typed[v, "PackedArray"["Integer64", 1]]},
         Module[{a = v, b = 0}, b = a[[1]]; b]]|}
  in
  let acquires =
    count_instrs (function Wir.Mem_acquire _ -> true | _ -> false) c.Pipeline.program
  in
  let releases =
    count_instrs (function Wir.Mem_release _ -> true | _ -> false) c.Pipeline.program
  in
  Alcotest.(check bool) "aliasing copy acquires" true (acquires >= 1);
  Alcotest.(check int) "acquires balance releases" acquires releases

let test_memory_pass_skips_scalars () =
  let c = compile fn_src in
  Alcotest.(check int) "scalars unmanaged" 0
    (count_instrs
       (function Wir.Mem_acquire _ | Wir.Mem_release _ -> true | _ -> false)
       c.Pipeline.program)

let test_mutability_promotion () =
  (* fresh array, single update, dead afterwards -> proven in-place *)
  let c =
    compile
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{a = ConstantArray[0, n]}, a[[1]] = 7; 0]]|}
  in
  Alcotest.(check bool) "promoted" true (c.Pipeline.inplace_updates >= 1)

let test_mutability_blocked_by_alias () =
  (* the array is aliased by b which is still live: must stay checked *)
  let c =
    compile
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{a = ConstantArray[0, n], b = 0, keep = ConstantArray[0, n]},
          keep = a;
          a[[1]] = 7;
          b = keep[[1]] + a[[1]];
          b]]|}
  in
  let inplace =
    count_instrs
      (function
        | Wir.Call { callee = Wir.Resolved { mangled; _ }; _ } ->
          Filename.check_suffix mangled "_inplace"
        | _ -> false)
      c.Pipeline.program
  in
  Alcotest.(check int) "aliased update stays checked" 0 inplace

let test_user_pass_injection () =
  (* §4.7: users can inject passes into the pipeline *)
  let seen = ref 0 in
  let pass =
    { Pipeline.pass_name = "count-blocks";
      pass_run =
        (fun prog ->
           List.iter (fun f -> seen := !seen + List.length f.Wir.blocks) prog.Wir.funcs) }
  in
  let _ =
    Pipeline.compile ~user_passes:[ pass ] ~name:"p" (parse fn_src)
  in
  Alcotest.(check bool) "user pass ran" true (!seen > 0)

let test_pass_timings_recorded () =
  let c = compile fn_src in
  let names = List.map fst c.Pipeline.timings in
  List.iter
    (fun expected ->
       Alcotest.(check bool) expected true (List.mem expected names))
    [ "macro+binding+lower"; "type-inference"; "function-resolution";
      (* the optimisation fixpoint reports per-pass entries *)
      "fold"; "simplify-cfg"; "cse"; "licm"; "dce"; "bparam-elim"; "inline";
      "mutability"; "abort-insertion"; "abort-stride"; "memory-management" ]

let tests =
  [ Alcotest.test_case "lint accepts pipeline output" `Quick test_lint_accepts_pipeline_output;
    Alcotest.test_case "lint rejects double definition" `Quick test_lint_catches_double_def;
    Alcotest.test_case "lint rejects use before def" `Quick test_lint_catches_use_before_def;
    Alcotest.test_case "verify rejects use before def" `Quick test_verify_use_before_def;
    Alcotest.test_case "verify rejects bad jump arity" `Quick test_verify_bad_jump_arity;
    Alcotest.test_case "verify rejects jump type mismatch" `Quick test_verify_jump_type_mismatch;
    Alcotest.test_case "verify rejects copy type mismatch" `Quick test_verify_copy_type_mismatch;
    Alcotest.test_case "verify rejects orphan blocks" `Quick test_verify_orphan_block;
    Alcotest.test_case "verify rejects bad terminators" `Quick test_verify_bad_terminator;
    Alcotest.test_case "verify rejects return type mismatch" `Quick test_verify_return_type_mismatch;
    Alcotest.test_case "verify rejects load-argument range" `Quick test_verify_load_argument_range;
    Alcotest.test_case "verify rejects call-arity mismatch" `Quick test_verify_call_arity_program;
    Alcotest.test_case "verify accepts pipeline output at O0/1/2" `Quick test_verify_accepts_every_corpus_stage;
    Alcotest.test_case "loop headers" `Quick test_loop_headers;
    Alcotest.test_case "nested loop headers" `Quick test_nested_loop_headers;
    Alcotest.test_case "dominance" `Quick test_dominance;
    Alcotest.test_case "natural loops: nesting" `Quick test_natural_loops_nested;
    Alcotest.test_case "natural loops: retreating edge" `Quick test_retreating_edge_not_loop;
    Alcotest.test_case "natural loops: self loop" `Quick test_self_loop;
    Alcotest.test_case "preheader insertion" `Quick test_preheader_reuse_and_insert;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "dead-branch deletion" `Quick test_dead_branch_deletion;
    Alcotest.test_case "common subexpressions" `Quick test_cse;
    Alcotest.test_case "dead code elimination" `Quick test_dce;
    Alcotest.test_case "optimisation can be disabled" `Quick test_optimization_off;
    Alcotest.test_case "declared functions inline" `Quick test_inlining_of_declared_function;
    Alcotest.test_case "loop-invariant code motion" `Quick test_licm_hoists_invariant;
    Alcotest.test_case "licm can be disabled" `Quick test_licm_disabled;
    Alcotest.test_case "bounds-check elimination" `Quick test_bounds_check_elimination;
    Alcotest.test_case "abort checks at loop heads + prologue" `Quick test_abort_placement;
    Alcotest.test_case "non-counted loops fall back to polls" `Quick test_abort_poll_fallback;
    Alcotest.test_case "abort stride 1 keeps immediate checks" `Quick test_abort_stride_disabled;
    Alcotest.test_case "abort stride spares outer headers" `Quick test_abort_stride_outer_keeps_check;
    Alcotest.test_case "abort handling off" `Quick test_abort_disabled;
    Alcotest.test_case "memory pass balance" `Quick test_memory_pass_balance;
    Alcotest.test_case "memory pass ignores scalars" `Quick test_memory_pass_skips_scalars;
    Alcotest.test_case "mutability promotion" `Quick test_mutability_promotion;
    Alcotest.test_case "aliased update stays checked" `Quick test_mutability_blocked_by_alias;
    Alcotest.test_case "user pass injection (§4.7)" `Quick test_user_pass_injection;
    Alcotest.test_case "per-pass timings (E8)" `Quick test_pass_timings_recorded ]
