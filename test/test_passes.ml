(* IR analyses and passes (S11–S13, S16–S17): the SSA linter, CFG analyses,
   classical optimisations, and the language-obligation passes. *)

open Wolf_wexpr
open Wolf_compiler

let parse = Parser.parse

let compile ?(options = Options.default) ?type_env src =
  Pipeline.compile ~options ?type_env ~name:"p" (parse src)

let count_instrs pred (prog : Wir.program) =
  List.fold_left
    (fun acc f ->
       List.fold_left
         (fun acc (b : Wir.block) ->
            acc + List.length (List.filter pred b.Wir.instrs))
         acc f.Wir.blocks)
    0 prog.Wir.funcs

let is_call base = function
  | Wir.Call { callee = Wir.Resolved { base = b; _ }; _ } -> b = base
  | _ -> false

let fn_src =
  {|Function[{Typed[n, "MachineInteger"]},
     Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]|}

(* ---------------- linter ---------------- *)

let test_lint_accepts_pipeline_output () =
  let c = compile fn_src in
  match Wir_lint.check_program c.Pipeline.program with
  | Ok () -> ()
  | Error es -> Alcotest.failf "lint: %s" (String.concat "; " es)

let test_lint_catches_double_def () =
  let v = Wir.fresh_var ~ty:Types.int64 () in
  let blk =
    { Wir.label = 0; bparams = [||];
      instrs =
        [ Wir.Copy { dst = v; src = Wir.Oconst (Wir.Cint 1) };
          Wir.Copy { dst = v; src = Wir.Oconst (Wir.Cint 2) } ];
      term = Wir.Return (Wir.Ovar v) }
  in
  let f = { Wir.fname = "bad"; fparams = [||]; ret_ty = Some Types.int64;
            blocks = [ blk ]; finline = false; fsource = None } in
  match Wir_lint.check_func f with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double definition accepted"

let test_lint_catches_use_before_def () =
  let v = Wir.fresh_var ~ty:Types.int64 () in
  let w = Wir.fresh_var ~ty:Types.int64 () in
  let blk =
    { Wir.label = 0; bparams = [||];
      instrs = [ Wir.Copy { dst = w; src = Wir.Ovar v } ];
      term = Wir.Return (Wir.Ovar w) }
  in
  let f = { Wir.fname = "bad"; fparams = [||]; ret_ty = Some Types.int64;
            blocks = [ blk ]; finline = false; fsource = None } in
  match Wir_lint.check_func f with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "use before definition accepted"

(* ---------------- CFG analyses ---------------- *)

let test_loop_headers () =
  let c = compile fn_src in
  let main = Wir.main c.Pipeline.program in
  let cfg = Analysis.build_cfg main in
  let headers = Analysis.loop_headers main cfg in
  Alcotest.(check int) "one loop" 1 (List.length headers)

let test_nested_loop_headers () =
  let c =
    compile
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{s = 0, i = 1, j = 1},
          While[i <= n, j = 1; While[j <= n, s = s + 1; j = j + 1]; i = i + 1];
          s]]|}
  in
  let main = Wir.main c.Pipeline.program in
  let cfg = Analysis.build_cfg main in
  Alcotest.(check int) "two loops" 2 (List.length (Analysis.loop_headers main cfg))

let test_dominance () =
  let c = compile fn_src in
  let main = Wir.main c.Pipeline.program in
  let cfg = Analysis.build_cfg main in
  let entry = (Wir.entry main).Wir.label in
  List.iter
    (fun (b : Wir.block) ->
       Alcotest.(check bool)
         (Printf.sprintf "entry dominates b%d" b.Wir.label)
         true
         (Analysis.dominates cfg entry b.Wir.label))
    main.Wir.blocks

(* ---------------- optimisations ---------------- *)

let test_constant_folding () =
  (* 2 + 3*4 folds away entirely: no arithmetic calls should remain *)
  let c = compile {|Function[{Typed[n, "MachineInteger"]}, n + (2 + 3*4)]|} in
  let adds = count_instrs (is_call "checked_binary_plus") c.Pipeline.program in
  let muls = count_instrs (is_call "checked_binary_times") c.Pipeline.program in
  Alcotest.(check int) "one residual add" 1 adds;
  Alcotest.(check int) "no multiplies" 0 muls

let test_dead_branch_deletion () =
  let c = compile {|Function[{Typed[n, "MachineInteger"]}, If[2 > 1, n, n*n]]|} in
  let main = Wir.main c.Pipeline.program in
  Alcotest.(check int) "collapsed to one block" 1 (List.length main.Wir.blocks);
  Alcotest.(check int) "multiply eliminated" 0
    (count_instrs (is_call "checked_binary_times") c.Pipeline.program)

let test_cse () =
  let c =
    compile {|Function[{Typed[x, "Real64"]}, (x*x + 1.0) + (x*x + 2.0)]|}
  in
  Alcotest.(check int) "x*x computed once" 1
    (count_instrs (is_call "binary_times") c.Pipeline.program)

let test_dce () =
  let c =
    compile
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{unused = n*n*n, kept = n + 1}, kept]]|}
  in
  Alcotest.(check int) "dead cube removed" 0
    (count_instrs (is_call "checked_binary_times") c.Pipeline.program)

let test_optimization_off () =
  let options = { Options.default with Options.opt_level = 0 } in
  let c = compile ~options {|Function[{Typed[n, "MachineInteger"]}, n + (2 + 3*4)]|} in
  Alcotest.(check bool) "unoptimised keeps the multiply" true
    (count_instrs (is_call "checked_binary_times") c.Pipeline.program >= 1)

let test_inlining_of_declared_function () =
  let env = Type_env.create ~parent:(Type_env.builtin ()) "t" in
  Type_env.declare_wolfram env "TinyTwice"
    ~spec:(parse {|TypeSpecifier[{"Integer64"} -> "Integer64"]|})
    ~body:(parse "Function[{x}, x + x]");
  let c =
    compile ~type_env:env {|Function[{Typed[n, "MachineInteger"]}, TinyTwice[n] + 1]|}
  in
  (* after inlining no Func call to the instance remains in main *)
  let main = Wir.main c.Pipeline.program in
  let calls_instance =
    List.exists
      (fun (b : Wir.block) ->
         List.exists
           (function Wir.Call { callee = Wir.Func _; _ } -> true | _ -> false)
           b.Wir.instrs)
      main.Wir.blocks
  in
  Alcotest.(check bool) "instance inlined into caller" false calls_instance

(* ---------------- obligation passes ---------------- *)

let test_abort_placement () =
  let c = compile fn_src in
  let main = Wir.main c.Pipeline.program in
  let cfg = Analysis.build_cfg main in
  let headers = Analysis.loop_headers main cfg in
  let entry = Wir.entry main in
  let has_abort (b : Wir.block) =
    List.exists (function Wir.Abort_check -> true | _ -> false) b.Wir.instrs
  in
  Alcotest.(check bool) "prologue check" true (has_abort entry);
  List.iter
    (fun l ->
       Alcotest.(check bool)
         (Printf.sprintf "loop header b%d check" l)
         true
         (has_abort (Wir.find_block main l)))
    headers;
  (* exactly headers + prologue, not one per instruction *)
  Alcotest.(check int) "check count" (1 + List.length headers)
    (count_instrs (function Wir.Abort_check -> true | _ -> false) c.Pipeline.program)

let test_abort_disabled () =
  let options = { Options.default with Options.abort_handling = false } in
  let c = compile ~options fn_src in
  Alcotest.(check int) "no checks" 0
    (count_instrs (function Wir.Abort_check -> true | _ -> false) c.Pipeline.program)

let test_memory_pass_balance () =
  let c =
    compile
      {|Function[{Typed[v, "PackedArray"["Integer64", 1]]},
         Module[{a = v, b = 0}, b = a[[1]]; b]]|}
  in
  let acquires =
    count_instrs (function Wir.Mem_acquire _ -> true | _ -> false) c.Pipeline.program
  in
  let releases =
    count_instrs (function Wir.Mem_release _ -> true | _ -> false) c.Pipeline.program
  in
  Alcotest.(check bool) "aliasing copy acquires" true (acquires >= 1);
  Alcotest.(check int) "acquires balance releases" acquires releases

let test_memory_pass_skips_scalars () =
  let c = compile fn_src in
  Alcotest.(check int) "scalars unmanaged" 0
    (count_instrs
       (function Wir.Mem_acquire _ | Wir.Mem_release _ -> true | _ -> false)
       c.Pipeline.program)

let test_mutability_promotion () =
  (* fresh array, single update, dead afterwards -> proven in-place *)
  let c =
    compile
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{a = ConstantArray[0, n]}, a[[1]] = 7; 0]]|}
  in
  Alcotest.(check bool) "promoted" true (c.Pipeline.inplace_updates >= 1)

let test_mutability_blocked_by_alias () =
  (* the array is aliased by b which is still live: must stay checked *)
  let c =
    compile
      {|Function[{Typed[n, "MachineInteger"]},
         Module[{a = ConstantArray[0, n], b = 0, keep = ConstantArray[0, n]},
          keep = a;
          a[[1]] = 7;
          b = keep[[1]] + a[[1]];
          b]]|}
  in
  let inplace =
    count_instrs
      (function
        | Wir.Call { callee = Wir.Resolved { mangled; _ }; _ } ->
          Filename.check_suffix mangled "_inplace"
        | _ -> false)
      c.Pipeline.program
  in
  Alcotest.(check int) "aliased update stays checked" 0 inplace

let test_user_pass_injection () =
  (* §4.7: users can inject passes into the pipeline *)
  let seen = ref 0 in
  let pass =
    { Pipeline.pass_name = "count-blocks";
      pass_run =
        (fun prog ->
           List.iter (fun f -> seen := !seen + List.length f.Wir.blocks) prog.Wir.funcs) }
  in
  let _ =
    Pipeline.compile ~user_passes:[ pass ] ~name:"p" (parse fn_src)
  in
  Alcotest.(check bool) "user pass ran" true (!seen > 0)

let test_pass_timings_recorded () =
  let c = compile fn_src in
  let names = List.map fst c.Pipeline.timings in
  List.iter
    (fun expected ->
       Alcotest.(check bool) expected true (List.mem expected names))
    [ "macro+binding+lower"; "type-inference"; "function-resolution";
      (* the optimisation fixpoint reports per-pass entries *)
      "fold"; "simplify-cfg"; "cse"; "dce"; "inline";
      "mutability"; "abort-insertion"; "memory-management" ]

let tests =
  [ Alcotest.test_case "lint accepts pipeline output" `Quick test_lint_accepts_pipeline_output;
    Alcotest.test_case "lint rejects double definition" `Quick test_lint_catches_double_def;
    Alcotest.test_case "lint rejects use before def" `Quick test_lint_catches_use_before_def;
    Alcotest.test_case "loop headers" `Quick test_loop_headers;
    Alcotest.test_case "nested loop headers" `Quick test_nested_loop_headers;
    Alcotest.test_case "dominance" `Quick test_dominance;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "dead-branch deletion" `Quick test_dead_branch_deletion;
    Alcotest.test_case "common subexpressions" `Quick test_cse;
    Alcotest.test_case "dead code elimination" `Quick test_dce;
    Alcotest.test_case "optimisation can be disabled" `Quick test_optimization_off;
    Alcotest.test_case "declared functions inline" `Quick test_inlining_of_declared_function;
    Alcotest.test_case "abort checks at loop heads + prologue" `Quick test_abort_placement;
    Alcotest.test_case "abort handling off" `Quick test_abort_disabled;
    Alcotest.test_case "memory pass balance" `Quick test_memory_pass_balance;
    Alcotest.test_case "memory pass ignores scalars" `Quick test_memory_pass_skips_scalars;
    Alcotest.test_case "mutability promotion" `Quick test_mutability_promotion;
    Alcotest.test_case "aliased update stays checked" `Quick test_mutability_blocked_by_alias;
    Alcotest.test_case "user pass injection (§4.7)" `Quick test_user_pass_injection;
    Alcotest.test_case "per-pass timings (E8)" `Quick test_pass_timings_recorded ]
