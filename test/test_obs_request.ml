(* Request-scoped tracing through a live daemon (the observability
   tentpole): one eval must produce exactly one request root span whose
   flow events stitch the accept domain to the worker domain, with the
   tier promotion it spawned carrying the same trace_id; and a
   deadline-exceeded request must leave a flight-recorder dump whose
   phases span at least two domains. *)

module P = Wolf_serve.Protocol
module C = Wolf_serve.Client
module S = Wolf_serve.Server
open Wolf_obs

let with_server ?(tier = false) ?(tier_threshold = 12) ?(flight_dir = None)
    ?(flight_threshold_ms = 0.0) f =
  let path = Filename.temp_file "wolfd_obs" ".sock" in
  let srv =
    S.start
      { (S.default_config ~socket_path:path ()) with
        S.jobs = 2; tier; tier_threshold; flight_dir; flight_threshold_ms }
  in
  Fun.protect
    ~finally:(fun () ->
        S.stop srv;
        if Sys.file_exists path then (try Sys.remove path with _ -> ()))
    (fun () -> f srv path)

let until ?(timeout = 10.0) ?(what = "condition") pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let ev_str name ev = Option.bind (Json_min.member name ev) Json_min.str
let ev_num name ev = Option.bind (Json_min.member name ev) Json_min.num
let ev_int name ev = Option.map int_of_float (ev_num name ev)

let arg_str name ev =
  Option.bind (Json_min.member "args" ev) (fun a ->
      Option.bind (Json_min.member name a) Json_min.str)

(* ------------------------------------------------------------------ *)

let test_request_stitched_across_domains () =
  Trace.reset ();
  Trace.enable ();
  let events =
    Fun.protect ~finally:(fun () -> Trace.disable ()) @@ fun () ->
    with_server ~tier:true ~tier_threshold:1 @@ fun _srv path ->
    let c = C.connect path in
    Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
    let src =
      "Function[{Typed[n, \"MachineInteger\"]}, \
       Module[{s = 0}, Do[s = s + i, {i, 1, n}]; s]][100]"
    in
    (match C.eval c src with
     | { P.rsp = Ok (P.Text "5050"); _ } -> ()
     | { P.rsp = Ok _; _ } -> Alcotest.fail "unexpected eval payload"
     | { P.rsp = Error (k, m); _ } ->
       Alcotest.failf "eval failed (%s): %s" (P.error_kind_name k) m);
    (* the single call crossed the heat threshold; wait for the background
       promotion so its span (and flow pair) is in the captured window *)
    Wolfram.Tier.drain ();
    let json = Json_min.parse_exn (Trace.to_json ()) in
    Json_min.to_list
      (Option.value ~default:Json_min.Null (Json_min.member "traceEvents" json))
  in
  (* balance per track, accepting the full phase alphabet *)
  let depths = Hashtbl.create 8 in
  List.iter
    (fun ev ->
       let tid = Option.value ~default:(-1) (ev_int "tid" ev) in
       let d = Option.value ~default:0 (Hashtbl.find_opt depths tid) in
       match ev_str "ph" ev with
       | Some "B" -> Hashtbl.replace depths tid (d + 1)
       | Some "E" ->
         if d = 0 then Alcotest.failf "tid %d: E below depth 0" tid;
         Hashtbl.replace depths tid (d - 1)
       | Some ("i" | "s" | "f") -> ()
       | _ -> Alcotest.fail "unexpected phase")
    events;
  Hashtbl.iter
    (fun tid d -> if d <> 0 then Alcotest.failf "tid %d: %d unclosed" tid d)
    depths;
  (* exactly one request root, on the worker that ran it, with its outcome *)
  let roots =
    List.filter
      (fun ev ->
         ev_str "ph" ev = Some "B" && ev_str "name" ev = Some "request"
         && ev_str "cat" ev = Some "serve")
      events
  in
  Alcotest.(check int) "one request root" 1 (List.length roots);
  let root = List.hd roots in
  let trace_id =
    match arg_str "trace_id" root with
    | Some t -> t
    | None -> Alcotest.fail "request root without trace_id"
  in
  let root_end =
    List.find_opt
      (fun ev ->
         ev_str "ph" ev = Some "E" && ev_str "name" ev = Some "request"
         && ev_int "tid" ev = ev_int "tid" root)
      events
  in
  (match root_end with
   | None -> Alcotest.fail "request root never closed"
   | Some e ->
     let outcome =
       match arg_str "outcome" e, arg_str "outcome" root with
       | Some o, _ | None, Some o -> o
       | None, None -> Alcotest.fail "request span without outcome"
     in
     Alcotest.(check string) "outcome annotated" "ok" outcome);
  (* the flow pair stitches two different tracks: 's' on the conn thread
     (accept domain), 'f' inside the worker's job slice *)
  let flows ph =
    List.filter_map
      (fun ev ->
         if ev_str "ph" ev = Some ph then
           match ev_int "id" ev, ev_int "tid" ev with
           | Some id, Some tid -> Some (id, tid)
           | _ -> Alcotest.failf "flow %s without id/tid" ph
         else None)
      events
  in
  let starts = flows "s" and finishes = flows "f" in
  Alcotest.(check bool) "at least one flow start" true (starts <> []);
  let stitched =
    List.exists
      (fun (id, stid) ->
         List.exists (fun (id', ftid) -> id' = id && ftid <> stid) finishes)
      starts
  in
  Alcotest.(check bool) "a flow pair crosses domains" true stitched;
  (* the background -O2 promotion inherited the request identity *)
  let promote =
    List.find_opt
      (fun ev ->
         ev_str "name" ev = Some "tier-promote" && ev_str "ph" ev = Some "B")
      events
  in
  (match promote with
   | None -> Alcotest.fail "no tier-promote span in the window"
   | Some ev ->
     Alcotest.(check (option string)) "promotion carries the trace_id"
       (Some trace_id) (arg_str "trace_id" ev))

(* ------------------------------------------------------------------ *)

let test_deadline_leaves_flight_dump () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wolf_flight_req_%d" (Unix.getpid ()))
  in
  Flight.reset ();
  Fun.protect
    ~finally:(fun () ->
        Flight.reset ();
        if Sys.file_exists dir then begin
          Array.iter (fun f -> Sys.remove (Filename.concat dir f))
            (Sys.readdir dir);
          Unix.rmdir dir
        end)
  @@ fun () ->
  with_server ~flight_dir:(Some dir) @@ fun _srv path ->
  let c = C.connect path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (match C.eval ~deadline_ms:30 c "Do[Null, {i, 100000000}]" with
   | { P.rsp = Error (P.Deadline, _); _ } -> ()
   | { P.rsp = Error (k, m); _ } ->
     Alcotest.failf "expected deadline, got %s: %s" (P.error_kind_name k) m
   | { P.rsp = Ok _; _ } -> Alcotest.fail "long eval beat its deadline");
  let dump_files () =
    if not (Sys.file_exists dir) then [||]
    else
      Array.of_list
        (List.filter
           (fun f -> Filename.check_suffix f ".wfr")
           (Array.to_list (Sys.readdir dir)))
  in
  until ~what:"flight dump file" (fun () -> Array.length (dump_files ()) > 0);
  let file = Filename.concat dir (dump_files ()).(0) in
  match Flight.read_file file with
  | Error e -> Alcotest.failf "dump unreadable: %s" e
  | Ok d ->
    Alcotest.(check string) "dump reason" "deadline" d.Flight.d_reason;
    let t =
      match d.Flight.d_trigger with
      | Some t -> t
      | None -> Alcotest.fail "dump without a trigger record"
    in
    Alcotest.(check string) "trigger outcome" "deadline" t.Flight.fr_outcome;
    Alcotest.(check string) "trigger op" "eval" t.Flight.fr_op;
    let phase_names =
      List.map (fun p -> p.Flight.ph_name) t.Flight.fr_phases
    in
    List.iter
      (fun want ->
         if not (List.mem want phase_names) then
           Alcotest.failf "trigger lacks phase %s (has: %s)" want
             (String.concat ", " phase_names))
      [ "decode"; "queue_wait"; "eval" ];
    (* decode ran on the accept domain, the rest on a worker: the timeline
       genuinely crosses domains *)
    let domains =
      List.sort_uniq compare
        (List.map (fun p -> p.Flight.ph_domain) t.Flight.fr_phases)
    in
    Alcotest.(check bool)
      (Printf.sprintf "phases span >= 2 domains (saw %d)"
         (List.length domains))
      true
      (List.length domains >= 2);
    (* phases are chronological and inside the request envelope *)
    ignore
      (List.fold_left
         (fun prev p ->
            if p.Flight.ph_start_ns < prev then
              Alcotest.fail "phases out of order";
            p.Flight.ph_start_ns)
         min_int t.Flight.fr_phases);
    Alcotest.(check bool) "total covers the eval" true
      (t.Flight.fr_total_ns >= 25_000_000)

let tests =
  [ Alcotest.test_case "request root stitched across domains" `Quick
      test_request_stitched_across_domains;
    Alcotest.test_case "deadline request leaves a readable flight dump"
      `Quick test_deadline_leaves_flight_dump ]
