(* Data-parallel loop tests: deterministic recognizer decisions (which
   loop shapes parallelise, which reject and why), parallel == serial
   under every forced chunking, schedule-cache hit determinism (a second
   run with the same loop fingerprint measures nothing), error and abort
   propagation out of chunk workers, and the executor-sharing regressions
   — a saturated pool degrades a parallel-for to serial instead of
   deadlocking, including under a tier-promoted function. *)

open Wolf_wexpr
module PR = Wolf_runtime.Par_runtime
module Rtval = Wolf_runtime.Rtval
module Ex = Wolf_parallel.Executor
module A = Wolf_base.Abort_signal
module Options = Wolf_compiler.Options

let parse = Parser.parse

let par_options =
  { Options.default with
    Options.parallel_loops = true; opt_level = 2; use_cache = false }

let compile src =
  Wolfram.function_compile ~options:par_options ~target:Wolfram.Threaded
    (parse src)

let pmeta cf =
  match Wolfram.pipeline_of cf with
  | None -> Alcotest.fail "no pipeline instrumentation"
  | Some c -> c.Wolf_compiler.Pipeline.program.Wolf_compiler.Wir.pmeta

let decisions cf =
  List.filter_map
    (fun (k, v) ->
       if String.length k >= 8 && String.sub k 0 8 = "parloop." then Some v
       else None)
    (pmeta cf)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let expect_real what e =
  match e with
  | Expr.Real r -> r
  | Expr.Int i -> float_of_int i
  | e -> Alcotest.failf "%s: expected a number, got %s" what (Expr.to_string e)

let close a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= 1e-9 *. scale

(* ------------------------------------------------------------------ *)
(* Recognizer decisions are deterministic per loop shape              *)

let sum_src =
  "Function[{Typed[n, \"MachineInteger\"]}, \
   Module[{s = 0.0, i = 1}, While[i <= n, s = s + 0.5*i; i = i + 1]; s]]"

let prod_src =
  "Function[{Typed[n, \"MachineInteger\"]}, \
   Module[{s = 1.0, i = 1}, \
   While[i <= n, s = s * (1.0 + 0.001*i); i = i + 1]; s]]"

let map_src =
  "Function[{Typed[n, \"MachineInteger\"]}, \
   Module[{a = ConstantArray[0, 64], i = 1}, \
   While[i <= 64, a[[i]] = 3*i + 1; i = i + 1]; a]]"

let test_decisions () =
  let one_decision what src =
    match decisions (compile src) with
    | [ d ] -> d
    | ds ->
      Alcotest.failf "%s: expected one parloop decision, got [%s]" what
        (String.concat "; " ds)
  in
  let check what src prefix =
    let d = one_decision what src in
    if not (has_prefix ~prefix d) then
      Alcotest.failf "%s: expected %S…, got %S" what prefix d
  in
  check "plus-real reduce" sum_src "parallelized reduce";
  check "times-real reduce" prod_src "parallelized reduce";
  check "iv-indexed map" map_src "parallelized map";
  check "minus reduce stays serial"
    "Function[{Typed[n, \"MachineInteger\"]}, \
     Module[{s = 0.0, i = 1}, While[i <= n, s = s - 0.5*i; i = i + 1]; s]]"
    "rejected: non-associative";
  check "checked int reduce stays serial"
    "Function[{Typed[n, \"MachineInteger\"]}, \
     Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]"
    "rejected: integer overflow";
  check "accumulator-controlled Min stays serial"
    "Function[{Typed[n, \"MachineInteger\"]}, \
     Module[{s = 0.0, i = 1}, \
     While[i <= n, s = Min[s, 7.5 - 0.5*i]; i = i + 1]; s]]"
    "rejected: control depends on the accumulator"

(* inner loop of a nest parallelises, the outer (now holding the
   outlined closure) stays serial *)
let test_nested_decision () =
  let cf =
    compile
      "Function[{Typed[n, \"MachineInteger\"]}, \
       Module[{s = 0.0, i = 1, j = 1}, \
       While[i <= n, j = 1; While[j <= n, s = s + 0.5*j; j = j + 1]; \
       i = i + 1]; s]]"
  in
  let ds = decisions cf in
  Alcotest.(check int) "two decisions" 2 (List.length ds);
  Alcotest.(check bool) "inner parallelised" true
    (List.exists (has_prefix ~prefix:"parallelized reduce") ds);
  Alcotest.(check bool) "outer rejected" true
    (List.exists (has_prefix ~prefix:"rejected:") ds)

(* ------------------------------------------------------------------ *)
(* Parallel == serial under every chunking                             *)

let forced_schedules =
  [ PR.Serial; PR.Static 2; PR.Static 4; PR.Dynamic 7; PR.Dynamic 16;
    PR.Dynamic 64 ]

let test_reduce_chunking_equivalence () =
  List.iter
    (fun (what, src, n) ->
       let cf = compile src in
       let serial =
         expect_real what
           (PR.with_jobs 1 (fun () -> Wolfram.call cf [ Expr.Int n ]))
       in
       List.iter
         (fun s ->
            let v =
              PR.with_jobs 4 (fun () ->
                  PR.with_forced_schedule s (fun () ->
                      Wolfram.call cf [ Expr.Int n ]))
            in
            let v = expect_real what v in
            if not (close serial v) then
              Alcotest.failf "%s under %s: %.17g <> serial %.17g" what
                (PR.schedule_to_string s) v serial)
         forced_schedules)
    [ ("plus reduce", sum_src, 10_000); ("times reduce", prod_src, 500) ]

let test_map_chunking_equivalence () =
  let cf = compile map_src in
  let serial = PR.with_jobs 1 (fun () -> Wolfram.call cf [ Expr.Int 0 ]) in
  List.iter
    (fun s ->
       let v =
         PR.with_jobs 4 (fun () ->
             PR.with_forced_schedule s (fun () ->
                 Wolfram.call cf [ Expr.Int 0 ]))
       in
       if not (Expr.equal serial v) then
         Alcotest.failf "map under %s: %s <> %s" (PR.schedule_to_string s)
           (Expr.to_string v) (Expr.to_string serial))
    forced_schedules

(* repeated calls of one compiled function must keep returning the same
   value: compiled constants are pooled across calls, so an in-function
   Part-store must COW (the regression the par fuzz arm found) *)
let test_repeated_calls_idempotent () =
  let cf =
    compile
      "Function[{}, Module[{m = {5, 7, 3}}, \
       m[[1 + Mod[Total[m], Length[m]]]] = 0; m]]"
  in
  let first = Wolfram.call cf [] in
  for k = 2 to 5 do
    let v = Wolfram.call cf [] in
    if not (Expr.equal first v) then
      Alcotest.failf "call %d returned %s, call 1 returned %s" k
        (Expr.to_string v) (Expr.to_string first)
  done

(* ------------------------------------------------------------------ *)
(* Schedule cache determinism                                          *)

let test_schedule_cache_hits () =
  PR.clear_schedules ();
  let cf = compile sum_src in
  let n = 4096 in
  let call c = ignore (PR.with_jobs 4 (fun () -> Wolfram.call c [ Expr.Int n ])) in
  call cf;
  let m0 = PR.measurements () in
  Alcotest.(check bool) "first call measured" true (m0 > 0);
  let size0 = PR.schedules_size () in
  Alcotest.(check bool) "a schedule was remembered" true (size0 >= 1);
  (* same compiled function, same trip count: cache hit, zero measurement *)
  call cf;
  Alcotest.(check int) "second call measures nothing" m0 (PR.measurements ());
  (* a fresh compile of the same source has the same structural
     fingerprint (ids are renumbered densely), so it also hits *)
  call (compile sum_src);
  Alcotest.(check int) "fresh compile still hits" m0 (PR.measurements ());
  Alcotest.(check int) "no new cache entry" size0 (PR.schedules_size ());
  (* same fingerprint, different trip-count shape class: a new search *)
  ignore (PR.with_jobs 4 (fun () -> Wolfram.call cf [ Expr.Int (64 * n) ]));
  Alcotest.(check bool) "new shape class re-measures" true
    (PR.measurements () > m0)

(* ------------------------------------------------------------------ *)
(* Error and abort propagation out of chunks                           *)

exception Boom of int

let range_reduce ?(fail_at = -1) ?(abort_at = -1) () =
  (* mirrors an outlined reduce body: fold [a..b] onto the carry *)
  Rtval.Fun
    { Rtval.arity = 3;
      call =
        (fun args ->
           match args with
           | [| carry; Rtval.Int a; Rtval.Int b |] ->
             let s = ref (Rtval.as_real carry) in
             for i = a to b do
               if i = fail_at then raise (Boom i);
               if i = abort_at then raise A.Aborted;
               s := !s +. (0.5 *. float_of_int i)
             done;
             Rtval.Real !s
           | _ -> assert false) }

let reduce_args f = [| f; Rtval.Real 0.0; Rtval.Int 1; Rtval.Int 1000;
                       Rtval.Int 1 (* Plus/Real *); Rtval.Str "test-fp" |]

let test_chunk_exception_propagates () =
  PR.with_jobs 4 @@ fun () ->
  PR.with_forced_schedule (PR.Dynamic 16) @@ fun () ->
  match PR.parallel_reduce (reduce_args (range_reduce ~fail_at:437 ())) with
  | exception Boom 437 -> ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | v ->
    Alcotest.failf "expected Boom, got %s" (Expr.to_string (Rtval.to_expr v))

let test_chunk_abort_wins () =
  (* one chunk aborts, another fails: Aborted must win the merge *)
  PR.with_jobs 4 @@ fun () ->
  PR.with_forced_schedule (PR.Dynamic 16) @@ fun () ->
  match
    PR.parallel_reduce (reduce_args (range_reduce ~fail_at:901 ~abort_at:77 ()))
  with
  | exception A.Aborted -> ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | v ->
    Alcotest.failf "expected Aborted, got %s"
      (Expr.to_string (Rtval.to_expr v))

let test_injected_abort_in_compiled_loop () =
  let cf = compile sum_src in
  A.clear ();
  (* checks are strided (1 per 1024 back-edges) and domain-local: keep the
     threshold well under the ~12 checks the caller's first chunk performs *)
  A.abort_after 3;
  let finally () = A.clear () in
  Fun.protect ~finally @@ fun () ->
  match
    PR.with_jobs 4 (fun () ->
        PR.with_forced_schedule (PR.Dynamic 8) (fun () ->
            Wolfram.call cf [ Expr.Int 100_000 ]))
  with
  | exception A.Aborted -> ()
  | v -> Alcotest.failf "expected Aborted, got %s" (Expr.to_string v)

(* the direct reduce opcodes the source language reaches only through
   min/max reductions: merge identity and chunk order *)
let test_reduce_opcodes () =
  let minmax op =
    Rtval.Fun
      { Rtval.arity = 3;
        call =
          (fun args ->
             match args with
             | [| carry; Rtval.Int a; Rtval.Int b |] ->
               let s = ref (Rtval.as_real carry) in
               for i = a to b do
                 let v = Float.abs (float_of_int (i - 137)) in
                 s := (if op = `Min then Float.min else Float.max) !s v
               done;
               Rtval.Real !s
             | _ -> assert false) }
  in
  PR.with_jobs 4 @@ fun () ->
  PR.with_forced_schedule (PR.Dynamic 16) @@ fun () ->
  let run op code init =
    Rtval.as_real
      (PR.parallel_reduce
         [| minmax op; Rtval.Real init; Rtval.Int 1; Rtval.Int 1000;
            Rtval.Int code; Rtval.Str "test-fp-minmax" |])
  in
  Alcotest.(check (float 0.0)) "min over chunks" 0.0 (run `Min 4 7.0);
  Alcotest.(check (float 0.0)) "max over chunks" 863.0 (run `Max 6 7.0)

(* ------------------------------------------------------------------ *)
(* Executor sharing: saturation degrades to serial, never deadlocks    *)

let blocked_executor () =
  (* a 1-worker, capacity-1 pool whose worker is parked and whose queue
     is full: every further submit is refused with [`Saturated] *)
  let e = Ex.create ~capacity:1 ~jobs:1 () in
  let release = Atomic.make false in
  let park () = while not (Atomic.get release) do Thread.yield () done in
  ignore (Ex.submit e park);
  while (Ex.stats e).Ex.running < 1 do Thread.yield () done;
  ignore (Ex.submit e park);
  (e, release)

let with_blocked_executor f =
  let e, release = blocked_executor () in
  PR.set_executor e;
  let finally () =
    Atomic.set release true;
    Ex.quiesce e;
    Ex.shutdown e;
    (* leave a healthy shared pool behind for whatever runs next *)
    PR.set_executor (Ex.create ~capacity:256 ~jobs:4 ())
  in
  Fun.protect ~finally (fun () -> f e)

let test_saturated_pool_degrades_to_serial () =
  with_blocked_executor @@ fun e ->
  let v =
    PR.with_jobs 4 @@ fun () ->
    PR.with_forced_schedule (PR.Dynamic 32) @@ fun () ->
    PR.parallel_reduce (reduce_args (range_reduce ()))
  in
  (* the caller claimed every chunk itself: exact serial sum *)
  Alcotest.(check (float 0.0)) "caller-only result" 250_250.0
    (Rtval.as_real v);
  let st = Ex.stats e in
  Alcotest.(check bool)
    (Printf.sprintf "saturation was counted (saturated=%d)" st.Ex.saturated)
    true (st.Ex.saturated >= 3)

let test_tier_promoted_parallel_for_no_deadlock () =
  with_blocked_executor @@ fun _ ->
  let cf =
    Wolfram.tiered ~options:par_options ~threshold:1
      ~promote_target:Wolfram.Threaded ~name:"parloop_tier" (parse sum_src)
  in
  let t = Option.get (Wolfram.tier_of cf) in
  ignore (Wolfram.call cf [ Expr.Int 100 ]);
  (match Wolfram.Tier.await_promotion t with
   | Wolfram.Tier.Promoted -> ()
   | s -> Alcotest.failf "promotion ended %s" (Wolfram.Tier.state_name s));
  (* promoted closure runs its parallel loop while the shared pool is
     starved: must complete on the caller alone *)
  let v =
    PR.with_jobs 4 (fun () ->
        PR.with_forced_schedule (PR.Dynamic 8) (fun () ->
            Wolfram.call cf [ Expr.Int 1000 ]))
  in
  Alcotest.(check (float 1e-6)) "promoted parallel result" 250_250.0
    (expect_real "tier+parloop" v);
  Wolfram.Tier.shutdown ()

let tests =
  [ Alcotest.test_case "recognizer decisions per shape" `Quick test_decisions;
    Alcotest.test_case "nested loop: inner only" `Quick test_nested_decision;
    Alcotest.test_case "reduce == serial under all chunkings" `Quick
      test_reduce_chunking_equivalence;
    Alcotest.test_case "map == serial under all chunkings" `Quick
      test_map_chunking_equivalence;
    Alcotest.test_case "repeated calls are idempotent" `Quick
      test_repeated_calls_idempotent;
    Alcotest.test_case "schedule cache hit determinism" `Quick
      test_schedule_cache_hits;
    Alcotest.test_case "chunk exception propagates" `Quick
      test_chunk_exception_propagates;
    Alcotest.test_case "abort beats other chunk errors" `Quick
      test_chunk_abort_wins;
    Alcotest.test_case "injected abort in compiled loop" `Quick
      test_injected_abort_in_compiled_loop;
    Alcotest.test_case "direct min/max reduce opcodes" `Quick
      test_reduce_opcodes;
    Alcotest.test_case "saturated pool degrades to serial" `Quick
      test_saturated_pool_degrades_to_serial;
    Alcotest.test_case "tier-promoted parallel-for, starved pool" `Quick
      test_tier_promoted_parallel_for_no_deadlock ]
