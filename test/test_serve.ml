(* wolfd service-layer tests: protocol framing, session isolation,
   cancellation/deadlines, admission control, fault injection (client
   death, compile errors), metrics-source idempotency across daemon
   restarts, and a serve-arm fuzz mini-campaign.

   Every test spawns a real daemon on a private socket — these are
   integration tests of the full stack (framing -> admission -> executor
   domains -> kernel lock -> state swap), not mocks. *)

module P = Wolf_serve.Protocol
module C = Wolf_serve.Client
module S = Wolf_serve.Server

let with_server ?(jobs = 2) ?(queue = 64) ?(max_frame = P.default_max_frame)
    ?(tier = false) ?(tier_threshold = 12) f =
  let path = Filename.temp_file "wolfd" ".sock" in
  let srv =
    S.start
      { (S.default_config ~socket_path:path ()) with
        S.jobs; queue_capacity = queue; max_frame; tier; tier_threshold }
  in
  Fun.protect
    ~finally:(fun () ->
        S.stop srv;
        if Sys.file_exists path then (try Sys.remove path with _ -> ()))
    (fun () -> f srv path)

let ok_text what (r : P.response) =
  match r.P.rsp with
  | Ok (P.Text s) -> s
  | Ok (P.Json s) -> Alcotest.failf "%s: got JSON %s" what s
  | Error (k, m) ->
    Alcotest.failf "%s: error (%s) %s" what (P.error_kind_name k) m

let err_kind what (r : P.response) =
  match r.P.rsp with
  | Error (k, _) -> k
  | Ok _ -> Alcotest.failf "%s: expected an error reply" what

let check_eval c what src expected =
  Alcotest.(check string) what expected (ok_text what (C.eval c src))

(* a loop long enough (~5s) that a cancel always lands mid-evaluation, and
   short enough that a broken abort path fails the test instead of wedging
   the suite *)
let long_src = "Do[Null, {i, 100000000}]"

let until ?(timeout = 10.0) ?(what = "condition") pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Protocol codec                                                       *)

let test_protocol_roundtrip () =
  let reqs =
    [ { P.rid = 1; req = P.Eval { code = "1 + 1"; deadline_ms = None } };
      { P.rid = 2; req = P.Eval { code = "x\n\"y\""; deadline_ms = Some 250 } };
      { P.rid = 3; req = P.Compile { code = "Function[{}, 0]";
                                     target = "bytecode"; opt = 2 } };
      { P.rid = 4; req = P.Cancel { target = 2 } };
      { P.rid = 5; req = P.Stats };
      { P.rid = 6; req = P.Metrics `Prometheus };
      { P.rid = 7; req = P.Dump_flight };
      { P.rid = 8; req = P.Shutdown } ]
  in
  List.iter
    (fun r ->
       match P.decode_request (P.encode_request r) with
       | Ok r' when r = r' -> ()
       | Ok _ -> Alcotest.failf "request %d did not round-trip" r.P.rid
       | Error e -> Alcotest.failf "request %d: %s" r.P.rid e)
    reqs;
  let rsps =
    [ { P.rsp_id = 1; rsp = Ok (P.Text "42 \"quoted\""); micros = 17 };
      { P.rsp_id = 2; rsp = Error (P.Overloaded, "queue full"); micros = 0 };
      { P.rsp_id = 3; rsp = Error (P.Deadline, ""); micros = 5 } ]
  in
  List.iter
    (fun r ->
       match P.decode_response (P.encode_response r) with
       | Ok r' when r = r' -> ()
       | Ok _ -> Alcotest.failf "response %d did not round-trip" r.P.rsp_id
       | Error e -> Alcotest.failf "response %d: %s" r.P.rsp_id e)
    rsps;
  (* malformed payloads are errors, not exceptions *)
  List.iter
    (fun bad ->
       match P.decode_request bad with
       | Error _ -> ()
       | Ok _ -> Alcotest.failf "decoded %S" bad)
    [ "nonsense"; "{}"; "{\"id\":1,\"op\":\"teleport\"}";
      "{\"id\":1,\"op\":\"eval\"}"; "{\"id\":2,\"op\":\"cancel\"}" ]

let test_framing_pipe () =
  let r, w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr r and oc = Unix.out_channel_of_descr w in
  P.write_frame oc "hello";
  P.write_frame oc "";
  (match P.read_frame ~max_frame:1024 ic with
   | Ok s -> Alcotest.(check string) "frame 1" "hello" s
   | Error _ -> Alcotest.fail "frame 1 lost");
  (match P.read_frame ~max_frame:1024 ic with
   | Ok s -> Alcotest.(check string) "empty frame" "" s
   | Error _ -> Alcotest.fail "empty frame lost");
  close_out oc;
  (match P.read_frame ~max_frame:1024 ic with
   | Error `Eof -> ()
   | _ -> Alcotest.fail "expected EOF");
  close_in ic;
  (* an oversize declaration is detected from the header alone, before any
     payload byte is read (after it the stream is desynced by design) *)
  let r, w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr r and oc = Unix.out_channel_of_descr w in
  P.write_frame oc (String.make 300 'x');
  (match P.read_frame ~max_frame:100 ic with
   | Error (`Oversize n) -> Alcotest.(check int) "declared size" 300 n
   | _ -> Alcotest.fail "oversize frame not rejected");
  close_out oc;
  close_in ic

(* ------------------------------------------------------------------ *)
(* Unhappy frames against a live daemon                                 *)

let test_malformed_frame () =
  with_server @@ fun _srv path ->
  let c = C.connect path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  C.send_raw c "this is not json";
  let r = C.recv_any c in
  Alcotest.(check bool) "bad-frame kind" true
    (err_kind "malformed" r = P.Bad_frame);
  (* framing is still in sync: the connection keeps working *)
  check_eval c "after bad frame" "1 + 1" "2"

let test_oversize_frame () =
  with_server ~max_frame:4096 @@ fun _srv path ->
  let c = C.connect path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  C.send_raw c (String.make 8192 'a');
  let r = C.recv_any c in
  Alcotest.(check bool) "oversize kind" true
    (err_kind "oversize" r = P.Oversize);
  (* after a lying length prefix the daemon hangs up *)
  (match C.recv_any c with
   | exception P.Closed -> ()
   | _ -> Alcotest.fail "daemon kept an untrusted stream open")

(* ------------------------------------------------------------------ *)
(* Session isolation                                                    *)

let test_session_isolation () =
  with_server @@ fun _srv path ->
  let c1 = C.connect path and c2 = C.connect path in
  Fun.protect ~finally:(fun () -> C.close c1; C.close c2) @@ fun () ->
  check_eval c1 "c1 set" "ServeIso = 41" "41";
  (* c2 must not see c1's own values, even for the same symbol *)
  check_eval c2 "c2 unset" "ServeIso" "ServeIso";
  check_eval c2 "c2 set" "ServeIso = 1000" "1000";
  check_eval c1 "c1 kept" "ServeIso + 1" "42";
  check_eval c2 "c2 kept" "ServeIso + 1" "1001";
  (* down values are per-session too *)
  check_eval c1 "c1 downvalue" "ServeIsoF[n_] := n + 1" "Null";
  check_eval c1 "c1 call" "ServeIsoF[1]" "2";
  check_eval c2 "c2 no downvalue" "ServeIsoF[1]" "ServeIsoF[1]";
  (* each fresh session is seeded with the numeric constants *)
  check_eval c2 "c2 Pi" "Floor[Pi * 100]" "314"

(* ------------------------------------------------------------------ *)
(* Cancellation, deadlines, Abort[]                                     *)

let test_cancel_mid_eval () =
  with_server @@ fun srv path ->
  let c = C.connect path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let rid = C.send c (P.Eval { code = long_src; deadline_ms = None }) in
  until ~what:"eval to start" (fun () ->
      (S.executor_stats srv).Wolf_parallel.Executor.running >= 1);
  Thread.delay 0.05;   (* let it get past the prologue and into the loop *)
  let cr = C.cancel c ~target:rid in
  Alcotest.(check string) "cancel acknowledged" "cancelling"
    (ok_text "cancel" cr);
  let r = C.wait c rid in
  Alcotest.(check bool) "cancelled kind" true
    (err_kind "cancelled eval" r = P.Cancelled);
  (* the session survives the abort with its state intact *)
  check_eval c "after cancel" "1 + 2" "3"

let test_deadline () =
  with_server @@ fun _srv path ->
  let c = C.connect path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let r = C.eval ~deadline_ms:100 c long_src in
  Alcotest.(check bool) "deadline kind" true
    (err_kind "deadline eval" r = P.Deadline);
  check_eval c "after deadline" "2 + 2" "4"

let test_program_abort () =
  with_server @@ fun _srv path ->
  let c = C.connect path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (* a program aborting itself is a result, not a daemon error — and the
     consumed abort flag must not leak into the next request *)
  check_eval c "Abort[]" "Abort[]" "$Aborted";
  check_eval c "after Abort[]" "3 + 3" "6"

(* ------------------------------------------------------------------ *)
(* Admission control                                                    *)

let test_overload () =
  with_server ~jobs:1 ~queue:1 @@ fun srv path ->
  let c = C.connect path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (* occupy the single worker ... *)
  let long_rid = C.send c (P.Eval { code = long_src; deadline_ms = None }) in
  until ~what:"worker to claim the long eval" (fun () ->
      (S.executor_stats srv).Wolf_parallel.Executor.running >= 1);
  (* ... fill the queue's single slot ... *)
  let queued_rid = C.send c (P.Eval { code = "1 + 1"; deadline_ms = None }) in
  until ~what:"queue slot to fill" (fun () ->
      (S.executor_stats srv).Wolf_parallel.Executor.queued >= 1);
  (* ... and the next request must be refused immediately, not parked *)
  let refused_rid = C.send c (P.Eval { code = "2 + 2"; deadline_ms = None }) in
  let refused = C.wait c refused_rid in
  Alcotest.(check bool) "overloaded kind" true
    (err_kind "refused eval" refused = P.Overloaded);
  (* free the worker; the queued request then completes normally *)
  ignore (C.cancel c ~target:long_rid);
  let cancelled = C.wait c long_rid in
  Alcotest.(check bool) "long eval cancelled" true
    (err_kind "long eval" cancelled = P.Cancelled);
  Alcotest.(check string) "queued eval survived" "2"
    (ok_text "queued eval" (C.wait c queued_rid))

(* ------------------------------------------------------------------ *)
(* Fault injection                                                      *)

let test_client_death_reaps_session () =
  with_server ~jobs:1 @@ fun srv path ->
  let doomed = C.connect path in
  ignore (C.send doomed (P.Eval { code = long_src; deadline_ms = None }));
  until ~what:"doomed eval to start" (fun () ->
      (S.executor_stats srv).Wolf_parallel.Executor.running >= 1);
  Thread.delay 0.05;
  (* kill the client mid-request: no goodbye, just a closed socket *)
  C.close doomed;
  (* the daemon must reap the session, abort its evaluation, and release
     the worker for other clients *)
  until ~what:"session reap" (fun () -> S.session_count srv = 0);
  until ~what:"worker release" (fun () ->
      let s = S.executor_stats srv in
      s.Wolf_parallel.Executor.running = 0 && s.queued = 0);
  let c = C.connect path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  check_eval c "daemon healthy after client death" "6 * 7" "42"

let test_compile_error_reply () =
  with_server @@ fun _srv path ->
  let c = C.connect path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (* a type error is a hard compile failure (an unbound symbol is not: it
     soft-falls-back to the interpreter per F2) *)
  let r = C.compile c "Function[{Typed[s, \"String\"]}, s + 1]" in
  (match r.P.rsp with
   | Error (P.Compile_failed, msg) ->
     Alcotest.(check bool) "reply carries a diagnostic" true (msg <> "")
   | Error (k, m) ->
     Alcotest.failf "expected compile error, got (%s) %s"
       (P.error_kind_name k) m
   | Ok _ -> Alcotest.fail "ill-typed program compiled");
  (* parse errors are classified separately *)
  let r = C.eval c "1 + * 2" in
  Alcotest.(check bool) "parse kind" true
    (err_kind "parse error" r = P.Parse_error);
  (* the worker survives both *)
  let good = C.compile c "Function[{Typed[x, \"MachineInteger\"]}, x + 1]" in
  (match good.P.rsp with
   | Ok (P.Text _) -> ()
   | _ -> Alcotest.fail "worker did not survive the failed compiles")

(* ------------------------------------------------------------------ *)
(* Concurrency + shared cache                                           *)

let test_concurrent_clients () =
  with_server @@ fun _srv path ->
  let per_client = 25 in
  let failures = Atomic.make 0 in
  let worker k () =
    let c = C.connect path in
    Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
    for i = 1 to per_client do
      if i mod 5 = 0 then begin
        match
          (C.compile c
             (Printf.sprintf
                "Function[{Typed[x, \"MachineInteger\"]}, x + %d]" (i mod 2)))
            .P.rsp
        with
        | Ok _ -> ()
        | Error _ -> Atomic.incr failures
      end
      else begin
        let expected = string_of_int (k * 1000 + i) in
        match (C.eval c (Printf.sprintf "%d * 1000 + %d" k i)).P.rsp with
        | Ok (P.Text s) when s = expected -> ()
        | _ -> Atomic.incr failures
      end
    done
  in
  let threads = List.init 4 (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join threads;
  Alcotest.(check int) "all requests served correctly" 0
    (Atomic.get failures)

let test_shared_compile_cache () =
  with_server @@ fun _srv path ->
  let c1 = C.connect path and c2 = C.connect path in
  Fun.protect ~finally:(fun () -> C.close c1; C.close c2) @@ fun () ->
  (* a source no other test compiles, so the delta is attributable *)
  let src = "Function[{Typed[x, \"MachineInteger\"]}, x * 87 + 13]" in
  let before = (Wolfram.compile_cache_stats ()).Wolf_compiler.Compile_cache.hits in
  ignore (ok_text "c1 compile" (C.compile c1 src));
  ignore (ok_text "c2 compile" (C.compile c2 src));
  let after = (Wolfram.compile_cache_stats ()).Wolf_compiler.Compile_cache.hits in
  (* the second session's compile hits the entry the first one filled *)
  Alcotest.(check bool) "cache shared across sessions" true (after > before)

(* ------------------------------------------------------------------ *)
(* Metrics-source idempotency across restarts                           *)

let count_samples name =
  List.length
    (List.filter
       (fun s -> s.Wolf_obs.Metrics.s_name = name)
       (Wolf_obs.Metrics.samples ()))

let test_metrics_reregistration () =
  (* register_source semantics: same name replaces, never duplicates or
     raises — the property wolfd restarts rely on *)
  let open Wolf_compiler in
  let cache1 : int Compile_cache.t = Compile_cache.create () in
  let cache2 : int Compile_cache.t = Compile_cache.create () in
  Compile_cache.register_metrics ~prefix:"serve_test_cc" cache1;
  Compile_cache.register_metrics ~prefix:"serve_test_cc" cache2;
  Compile_cache.add cache2 "k1" 1;
  Compile_cache.add cache2 "k2" 2;
  Alcotest.(check int) "one sample set, not two" 1
    (count_samples "serve_test_cc_entries");
  let entries =
    List.find_map
      (fun s ->
         if s.Wolf_obs.Metrics.s_name = "serve_test_cc_entries" then
           match s.Wolf_obs.Metrics.s_value with
           | Wolf_obs.Metrics.V_int v -> Some v
           | _ -> None
         else None)
      (Wolf_obs.Metrics.samples ())
  in
  Alcotest.(check (option int)) "newest registration wins" (Some 2) entries;
  (* two full daemon lifecycles in one process: the "serve" source must be
     replaced, not doubled, and must sample the live instance *)
  with_server (fun _srv _path -> ());
  with_server @@ fun _srv path ->
  let c = C.connect path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (* a completed round-trip guarantees the accept loop has registered the
     session before we sample the gauge *)
  check_eval c "ping" "1" "1";
  Alcotest.(check int) "one serve_sessions sample" 1
    (count_samples "serve_sessions");
  (* the surviving sample must be wired to the LIVE daemon (one connected
     session), not to the stopped first instance (zero) *)
  let sessions =
    List.find_map
      (fun s ->
         if s.Wolf_obs.Metrics.s_name = "serve_sessions" then
           match s.Wolf_obs.Metrics.s_value with
           | Wolf_obs.Metrics.V_int v -> Some v
           | _ -> None
         else None)
      (Wolf_obs.Metrics.samples ())
  in
  Alcotest.(check (option int)) "gauge tracks the live daemon" (Some 1)
    sessions

(* ------------------------------------------------------------------ *)
(* Differential fuzzing through the daemon                              *)

let test_fuzz_serve_arm () =
  let report =
    Wolf_fuzz.Driver.run
      { Wolf_fuzz.Driver.default_config with
        Wolf_fuzz.Driver.seed = 2; count = 15;
        backends = [ Wolf_fuzz.Oracle.Serve ] }
  in
  Alcotest.(check int) "programs checked" 15
    report.Wolf_fuzz.Driver.generated;
  Alcotest.(check int) "daemon agrees with in-process eval byte-for-byte" 0
    report.Wolf_fuzz.Driver.disagreements

(* ------------------------------------------------------------------ *)
(* dump-flight op: a manual flight dump over the wire                   *)

let test_dump_flight_op () =
  Wolf_obs.Flight.reset ();
  with_server @@ fun _ path ->
  let c = C.connect path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  check_eval c "warm the ring" "1 + 1" "2";
  let dump () =
    match C.dump_flight c with
    | { P.rsp = Ok (P.Json frame); _ } ->
      let j = Wolf_obs.Json_min.parse_exn frame in
      let data =
        match Wolf_obs.Json_min.member "data" j with
        | Some d -> d
        | None -> Alcotest.fail "dump-flight reply without data"
      in
      (* no --flight-dir on this daemon: the op still answers, with a null
         path and the ring population *)
      Alcotest.(check bool) "path is null" true
        (Wolf_obs.Json_min.member "path" data = Some Wolf_obs.Json_min.Null);
      (match
         Option.bind (Wolf_obs.Json_min.member "records" data)
           Wolf_obs.Json_min.num
       with
       | Some n -> int_of_float n
       | None -> Alcotest.fail "dump-flight reply without records")
    | { P.rsp = Ok (P.Text t); _ } ->
      Alcotest.failf "dump-flight answered text: %s" t
    | { P.rsp = Error (k, m); _ } ->
      Alcotest.failf "dump-flight failed (%s): %s" (P.error_kind_name k) m
  in
  (* the worker appends its flight record after sending the eval reply, so
     the ring may trail the response by a beat *)
  until ~what:"the eval to be recorded" (fun () -> dump () >= 1)

(* ------------------------------------------------------------------ *)
(* Tiered evaluation inside the daemon                                  *)

let test_tier_eval () =
  with_server ~tier:true ~tier_threshold:2 @@ fun _ path ->
  let c = C.connect path in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let src =
    "Function[{Typed[n, \"MachineInteger\"]}, \
     Module[{s = 0}, Do[s = s + i, {i, 1, n}]; s]][100]"
  in
  (* drive the session's controller across its promotion threshold: every
     reply — interpreted, racing the background compile, and promoted —
     must be the same *)
  for i = 1 to 8 do
    check_eval c (Printf.sprintf "tiered eval %d" i) src "5050"
  done;
  (* non-literal and non-Function requests still take the plain path *)
  check_eval c "plain eval unaffected" "1 + 1" "2";
  check_eval c "symbolic args skip the tier" "Function[{x}, x + y][z]" "y + z"

let tests =
  [ Alcotest.test_case "protocol: codec round-trip + malformed" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "protocol: framing over a pipe" `Quick
      test_framing_pipe;
    Alcotest.test_case "daemon: malformed frame keeps connection" `Quick
      test_malformed_frame;
    Alcotest.test_case "daemon: oversize frame closes connection" `Quick
      test_oversize_frame;
    Alcotest.test_case "sessions: values and downvalues isolated" `Quick
      test_session_isolation;
    Alcotest.test_case "cancel: mid-eval abort, session survives" `Quick
      test_cancel_mid_eval;
    Alcotest.test_case "deadline: expired request is aborted" `Quick
      test_deadline;
    Alcotest.test_case "Abort[]: program abort is a result" `Quick
      test_program_abort;
    Alcotest.test_case "admission: overload refused immediately" `Quick
      test_overload;
    Alcotest.test_case "fault: client death reaps session + slot" `Quick
      test_client_death_reaps_session;
    Alcotest.test_case "fault: compile/parse errors, worker survives" `Quick
      test_compile_error_reply;
    Alcotest.test_case "concurrency: 4 clients, correct results" `Quick
      test_concurrent_clients;
    Alcotest.test_case "cache: shared across sessions" `Quick
      test_shared_compile_cache;
    Alcotest.test_case "metrics: sources idempotent across restarts" `Quick
      test_metrics_reregistration;
    Alcotest.test_case "fuzz: serve arm, 0 disagreements" `Quick
      test_fuzz_serve_arm;
    Alcotest.test_case "dump-flight: manual dump op answers" `Quick
      test_dump_flight_op;
    Alcotest.test_case "tier: session promotion, stable replies" `Quick
      test_tier_eval ]
