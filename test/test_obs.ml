(* The observability layer (DESIGN.md "Observability"): trace emitter shape
   and balance, metrics exporters, the runtime profiler, the compile-cache
   metrics source, and the --timings totals invariant. *)

open Wolf_obs
open Wolf_compiler

let domains = 4

let spawn_all n f =
  let ds = Array.init n (fun i -> Domain.spawn (fun () -> f i)) in
  Array.map Domain.join ds

(* ------------------------------------------------------------------ *)
(* Json_min: the checker itself has to be trustworthy                   *)

let test_json_min () =
  let ok s = match Json_min.parse s with Ok v -> v | Error e -> Alcotest.failf "%S: %s" s e in
  let bad s =
    match Json_min.parse s with
    | Ok _ -> Alcotest.failf "%S: expected a parse error" s
    | Error _ -> ()
  in
  (match ok {|{"a":[1,2.5,-3e2],"b":"x\n\"y","c":[true,false,null]}|} with
   | Json_min.Obj fields ->
     Alcotest.(check int) "fields" 3 (List.length fields);
     (match List.assoc "a" fields with
      | Json_min.Arr [ Num a; Num b; Num c ] ->
        Alcotest.(check (float 1e-9)) "1" 1.0 a;
        Alcotest.(check (float 1e-9)) "2.5" 2.5 b;
        Alcotest.(check (float 1e-9)) "-3e2" (-300.0) c
      | _ -> Alcotest.fail "array shape");
     (match List.assoc "b" fields with
      | Json_min.Str s -> Alcotest.(check string) "escapes" "x\n\"y" s
      | _ -> Alcotest.fail "string shape")
   | _ -> Alcotest.fail "object shape");
  bad "{\"a\":1,}";
  bad "{\"a\":1} trailing";
  bad "\"unterminated";
  bad "{\"bad escape\":\"\\q\"}";
  bad "[1,2";
  (* the escaper round-trips through the parser (control characters are
     escaped to \uXXXX, which the parser validates but keeps literal) *)
  let nasty = "quote\" backslash\\ newline\n tab\t" in
  (match Json_min.parse ("\"" ^ Json_min.escape nasty ^ "\"") with
   | Ok (Json_min.Str s) -> Alcotest.(check string) "roundtrip" nasty s
   | _ -> Alcotest.fail "escape roundtrip");
  Alcotest.(check string) "control chars escape" "\\u0001" (Json_min.escape "\x01")

(* ------------------------------------------------------------------ *)
(* Trace emitter                                                        *)

let with_tracing f =
  Trace.reset ();
  Trace.enable ();
  Fun.protect ~finally:(fun () -> Trace.disable ()) f

let parsed_events () =
  let json = Json_min.parse_exn (Trace.to_json ()) in
  match Json_min.member "traceEvents" json with
  | Some evs -> Json_min.to_list evs
  | None -> Alcotest.fail "no traceEvents member"

let ev_str name ev = Option.bind (Json_min.member name ev) Json_min.str
let ev_num name ev = Option.bind (Json_min.member name ev) Json_min.num

(* per-tid begin/end balance; returns the set of tids seen *)
let check_balance events =
  let depths = Hashtbl.create 8 in
  List.iter
    (fun ev ->
       let tid =
         match ev_num "tid" ev with
         | Some t -> int_of_float t
         | None -> Alcotest.fail "event without tid"
       in
       let d = Option.value ~default:0 (Hashtbl.find_opt depths tid) in
       match ev_str "ph" ev with
       | Some "B" -> Hashtbl.replace depths tid (d + 1)
       | Some "E" ->
         if d = 0 then Alcotest.failf "tid %d: E below depth 0" tid;
         Hashtbl.replace depths tid (d - 1)
       | Some "i" -> ()
       | _ -> Alcotest.fail "event with unexpected ph")
    events;
  Hashtbl.iter
    (fun tid d -> if d <> 0 then Alcotest.failf "tid %d: %d unclosed" tid d)
    depths;
  Hashtbl.fold (fun tid _ acc -> tid :: acc) depths []

let test_trace_shape () =
  with_tracing (fun () ->
      Trace.with_span ~cat:"test" "outer"
        ~args:[ ("k", Trace.arg_str "v\"quoted\""); ("n", Trace.arg_int 7) ]
        (fun () -> Trace.with_span ~cat:"test" "inner" (fun () -> ()));
      Trace.instant ~cat:"test" "mark");
  let json = Json_min.parse_exn (Trace.to_json ()) in
  Alcotest.(check bool) "displayTimeUnit" true
    (Json_min.member "displayTimeUnit" json <> None);
  (match Json_min.member "otherData" json with
   | Some od -> Alcotest.(check bool) "dropped reported" true
                  (Json_min.member "dropped" od <> None)
   | None -> Alcotest.fail "no otherData");
  let events = parsed_events () in
  Alcotest.(check int) "2 B + 2 E + 1 i" 5 (List.length events);
  List.iter
    (fun ev ->
       List.iter
         (fun f ->
            if Json_min.member f ev = None then
              Alcotest.failf "event missing %s" f)
         [ "name"; "cat"; "ph"; "ts"; "pid"; "tid" ])
    events;
  ignore (check_balance events);
  (* timestamps are non-decreasing within the single-domain stream *)
  let ts = List.filter_map (ev_num "ts") events in
  Alcotest.(check int) "all ts present" 5 (List.length ts);
  ignore
    (List.fold_left
       (fun prev t ->
          if t < prev then Alcotest.fail "timestamps regress";
          t)
       neg_infinity ts);
  (* span args survive with their JSON encoding intact *)
  let outer = List.find (fun ev -> ev_str "name" ev = Some "outer") events in
  match Json_min.member "args" outer with
  | Some args ->
    Alcotest.(check (option string)) "string arg" (Some "v\"quoted\"")
      (Option.bind (Json_min.member "k" args) Json_min.str);
    Alcotest.(check (option (float 1e-9))) "int arg" (Some 7.0)
      (Option.bind (Json_min.member "n" args) Json_min.num)
  | None -> Alcotest.fail "outer span lost its args"

let test_trace_exception_balance () =
  with_tracing (fun () ->
      (try
         Trace.with_span "a" (fun () ->
             Trace.with_span "b" (fun () -> failwith "boom"))
       with Failure _ -> ());
      (* the recorder must still be usable and balanced after the raise *)
      Trace.with_span "c" (fun () -> ()));
  let events = parsed_events () in
  Alcotest.(check int) "3 spans = 6 events" 6 (List.length events);
  ignore (check_balance events)

let test_trace_multidomain () =
  with_tracing (fun () ->
      ignore
        (spawn_all domains (fun d ->
             for i = 1 to 500 do
               Trace.with_span ~cat:"stress" "outer"
                 ~args:[ ("domain", Trace.arg_int d) ]
                 (fun () ->
                    Trace.with_span ~cat:"stress" "mid" (fun () ->
                        if i mod 7 = 0 then Trace.instant "tick"))
             done)));
  let events = parsed_events () in
  let tids = check_balance events in
  Alcotest.(check bool)
    (Printf.sprintf "at least %d tracks (got %d)" domains (List.length tids))
    true
    (List.length tids >= domains);
  (* nothing was dropped at the default capacity, so the count is exact:
     500 outer + 500 mid pairs per domain plus the sevenths *)
  let expected = domains * ((500 * 4) + (500 / 7)) in
  Alcotest.(check int) "event count" expected (List.length events)

let test_trace_bounded () =
  let prev_dropped = ref 0 in
  Trace.set_capacity 64;
  Fun.protect ~finally:(fun () -> Trace.set_capacity (1 lsl 19)) (fun () ->
      with_tracing (fun () ->
          for _ = 1 to 1000 do
            Trace.with_span "spam" (fun () ->
                Trace.with_span "nested" (fun () -> Trace.instant "i"))
          done;
          prev_dropped := Trace.dropped ()));
  let events = parsed_events () in
  Alcotest.(check bool) "buffer bounded" true (List.length events <= 64);
  Alcotest.(check bool) "drops counted" true (!prev_dropped > 0);
  (* the whole point of the reservation discipline: a full buffer still
     yields a balanced stream *)
  ignore (check_balance events)

(* ------------------------------------------------------------------ *)
(* Metrics registry and exporters                                       *)

let sample_named name labels =
  List.find_opt
    (fun s ->
       s.Metrics.s_name = name
       && List.sort compare s.Metrics.s_labels = List.sort compare labels)
    (Metrics.samples ())

let test_metrics_registry () =
  Metrics.reset ();
  let c = Metrics.counter ~help:"a counter" "obs_test_events" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  (* get-or-create: same identity returns the same instrument *)
  Metrics.incr (Metrics.counter "obs_test_events");
  Alcotest.(check int) "shared instrument" 6 (Metrics.counter_value c);
  let g = Metrics.gauge ~labels:[ ("shard", "a") ] "obs_test_depth" in
  Metrics.set_gauge g 2.5;
  Metrics.add_gauge g 0.5;
  Alcotest.(check (option (float 1e-9))) "find_gauge" (Some 3.0)
    (Metrics.find_gauge ~labels:[ ("shard", "a") ] "obs_test_depth");
  Alcotest.(check (option (float 1e-9))) "find_gauge missing" None
    (Metrics.find_gauge ~labels:[ ("shard", "b") ] "obs_test_depth");
  let h = Metrics.histogram ~bounds:[| 0.1; 1.0 |] "obs_test_lat" in
  Metrics.observe h 0.05;
  Metrics.observe h 0.5;
  Metrics.observe h 5.0;
  match sample_named "obs_test_lat" [] with
  | Some { Metrics.s_value = Metrics.V_histogram (buckets, sum, count); _ } ->
    (* [count] covers the implicit +Inf bucket, so the 5.0 observation
       shows up there and not in any finite bucket *)
    Alcotest.(check int) "count" 3 count;
    Alcotest.(check (float 1e-9)) "sum" 5.55 sum;
    (* finite buckets are cumulative *)
    Alcotest.(check (list int)) "buckets" [ 1; 2 ] (List.map snd buckets)
  | _ -> Alcotest.fail "histogram sample missing or wrong kind"

let test_metrics_exporters () =
  Metrics.reset ();
  Metrics.incr (Metrics.counter ~help:"evil \"help\"" "obs_exp_total_things");
  Metrics.set_gauge (Metrics.gauge ~labels:[ ("k", "v") ] "obs_exp_depth") 1.5;
  Metrics.observe (Metrics.histogram ~bounds:[| 1.0 |] "obs_exp_lat") 0.5;
  (* a pull-time source appears in both exporters without pre-registration *)
  Metrics.register_source "obs_exp_source" (fun () ->
      [ { Metrics.s_name = "obs_exp_pulled"; s_labels = []; s_help = "";
          s_kind = Metrics.Gauge; s_value = Metrics.V_int 42 } ]);
  let json = Json_min.parse_exn (Metrics.to_json ()) in
  let metrics =
    match Json_min.member "metrics" json with
    | Some m -> Json_min.to_list m
    | None -> Alcotest.fail "no metrics member"
  in
  let names = List.filter_map (ev_str "name") metrics in
  List.iter
    (fun n ->
       if not (List.mem n names) then Alcotest.failf "missing %s in JSON" n)
    [ "obs_exp_total_things"; "obs_exp_depth"; "obs_exp_lat"; "obs_exp_pulled" ];
  let prom = Metrics.to_prometheus () in
  let has needle =
    let nl = String.length needle and pl = String.length prom in
    let rec go i = i + nl <= pl && (String.sub prom i nl = needle || go (i + 1)) in
    if not (go 0) then Alcotest.failf "prometheus output lacks %S" needle
  in
  has "obs_exp_total_things_total 1";
  has "obs_exp_depth{k=\"v\"} 1.5";
  has "obs_exp_lat_bucket{le=\"1\"} 1";
  has "obs_exp_lat_bucket{le=\"+Inf\"} 1";
  has "obs_exp_lat_count 1";
  has "obs_exp_pulled 42";
  has "# TYPE obs_exp_total_things_total counter"

(* ------------------------------------------------------------------ *)
(* Runtime profiler                                                     *)

let spin seconds =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds do
    ignore (Sys.opaque_identity (sqrt 2.0))
  done

let test_profile_self_time () =
  Profile.reset ();
  Profile.set_enabled true;
  Fun.protect ~finally:(fun () -> Profile.set_enabled false) (fun () ->
      let inner = Profile.wrap_fn "obs_inner" (fun () -> spin 0.02) in
      let outer =
        Profile.wrap_fn "obs_outer" (fun () -> spin 0.01; inner (); inner ())
      in
      outer ();
      Profile.note_abort_poll ();
      Profile.note_abort_poll ();
      Profile.note_kernel_escape ());
  let stat name =
    match List.find_opt (fun s -> s.Profile.pf_name = name) (Profile.stats ()) with
    | Some s -> s
    | None -> Alcotest.failf "no profile row for %s" name
  in
  let outer = stat "obs_outer" and inner = stat "obs_inner" in
  Alcotest.(check int) "outer calls" 1 outer.Profile.pf_calls;
  Alcotest.(check int) "inner calls" 2 inner.Profile.pf_calls;
  (* self excludes profiled callees: outer spent ~10ms itself but ~50ms
     total; generous bounds keep this robust on loaded machines *)
  Alcotest.(check bool) "outer total >= self + inner" true
    (outer.Profile.pf_total >= outer.Profile.pf_self +. inner.Profile.pf_total -. 0.005);
  Alcotest.(check bool) "outer self well below total" true
    (outer.Profile.pf_self < outer.Profile.pf_total -. 0.02);
  Alcotest.(check bool) "inner self ~= inner total" true
    (abs_float (inner.Profile.pf_self -. inner.Profile.pf_total) < 0.005);
  Alcotest.(check int) "abort polls" 2 (Profile.abort_polls ());
  Alcotest.(check int) "kernel escapes" 1 (Profile.kernel_escapes ());
  (* the JSON report parses and carries the table *)
  let json = Json_min.parse_exn (Profile.to_json ()) in
  Alcotest.(check bool) "functions member" true
    (Json_min.member "functions" json <> None)

let test_profile_disabled_is_free () =
  Profile.reset ();
  (* wrapping with profiling off must not record anything *)
  let f = Profile.wrap_fn "obs_off" (fun x -> x + 1) in
  for _ = 1 to 100 do ignore (f 1) done;
  Alcotest.(check bool) "no row recorded" true
    (List.for_all (fun s -> s.Profile.pf_calls = 0) (Profile.stats ()))

(* profiled end-to-end through the facade: Options.profile reaches the
   backend wrapper and distinguishes the cache key *)
let test_profile_via_compile () =
  Profile.reset ();
  let src = "Function[{Typed[n, \"Integer64\"]}, Module[{s = 0}, Do[s = s + i, {i, n}]; s]]" in
  let options = { Options.default with Options.profile = true } in
  let cf = Wolfram.function_compile ~options ~name:"ObsProfiled" (Wolf_wexpr.Parser.parse src) in
  Profile.set_enabled true;
  Fun.protect ~finally:(fun () -> Profile.set_enabled false) (fun () ->
      ignore (Wolfram.call cf [ Wolf_wexpr.Expr.Int 1000 ]));
  Alcotest.(check bool) "profiled function recorded" true
    (List.exists
       (fun s -> s.Profile.pf_calls > 0)
       (Profile.stats ()));
  (* same source without profile must be a different cache key: its closure
     is uninstrumented *)
  let plain = Wolfram.function_compile ~name:"ObsProfiled" (Wolf_wexpr.Parser.parse src) in
  Profile.reset ();
  Profile.set_enabled true;
  Fun.protect ~finally:(fun () -> Profile.set_enabled false) (fun () ->
      ignore (Wolfram.call plain [ Wolf_wexpr.Expr.Int 1000 ]));
  Alcotest.(check bool) "unprofiled compile stays unprofiled" true
    (List.for_all (fun s -> s.Profile.pf_calls = 0) (Profile.stats ()))

(* ------------------------------------------------------------------ *)
(* Compile-cache metrics source                                         *)

let test_cache_metrics () =
  Metrics.reset ();
  let cache = Compile_cache.create ~capacity:2 ~weigh:String.length () in
  Compile_cache.register_metrics ~prefix:"obs_cache" cache;
  ignore (Compile_cache.find_or_compute cache "a" ~build:(fun () -> "aaaa"));
  ignore (Compile_cache.find_or_compute cache "a" ~build:(fun () -> assert false));
  ignore (Compile_cache.find_or_compute cache "b" ~build:(fun () -> "bb"));
  ignore (Compile_cache.find_or_compute cache "c" ~build:(fun () -> "cccccc"));
  let s = Compile_cache.stats cache in
  Alcotest.(check int) "lookups = hits + misses" s.Compile_cache.lookups
    (s.Compile_cache.hits + s.Compile_cache.misses);
  Alcotest.(check int) "evicted one" 1 s.Compile_cache.evictions;
  Alcotest.(check int) "two resident" 2 s.Compile_cache.entries;
  (* "a" (4 bytes) was evicted as LRU; "bb" + "cccccc" remain *)
  Alcotest.(check int) "byte occupancy tracks weights" 8 s.Compile_cache.bytes;
  let v name =
    match sample_named name [] with
    | Some { Metrics.s_value = Metrics.V_int v; _ } -> v
    | _ -> Alcotest.failf "no int sample %s" name
  in
  Alcotest.(check int) "source lookups" 4 (v "obs_cache_lookups");
  Alcotest.(check int) "source hits" 1 (v "obs_cache_hits");
  Alcotest.(check int) "source misses" 3 (v "obs_cache_misses");
  Alcotest.(check int) "source evictions" 1 (v "obs_cache_evictions");
  Alcotest.(check int) "source entries" 2 (v "obs_cache_entries");
  Alcotest.(check int) "source bytes" 8 (v "obs_cache_bytes")

let test_cache_waits_counted () =
  let cache = Compile_cache.create ~capacity:8 () in
  (* only one domain runs the build; it holds the in-flight slot until every
     domain has at least started its lookup, then a beat longer so the rest
     are parked on the condvar *)
  let started = Atomic.make 0 in
  let slow_build () =
    while Atomic.get started < domains do Domain.cpu_relax () done;
    Unix.sleepf 0.05;
    "value"
  in
  let results =
    spawn_all domains (fun _ ->
        Atomic.incr started;
        Compile_cache.find_or_compute cache "k" ~build:(fun () -> slow_build ()))
  in
  Array.iter (fun r -> Alcotest.(check string) "shared result" "value" r) results;
  let s = Compile_cache.stats cache in
  Alcotest.(check int) "one compile" 1 s.Compile_cache.misses;
  Alcotest.(check int) "rest are hits" (domains - 1) s.Compile_cache.hits;
  Alcotest.(check int) "invariant holds" s.Compile_cache.lookups
    (s.Compile_cache.hits + s.Compile_cache.misses);
  Alcotest.(check bool) "waits annotated" true (s.Compile_cache.waits >= 1)

(* ------------------------------------------------------------------ *)
(* --timings totals: each second reported exactly once (satellite 1)    *)

let test_pass_totals () =
  let src = "Function[{Typed[n, \"Integer64\"]}, Module[{s = 0}, Do[s = s + i*i, {i, n}]; s]]" in
  let options = { Options.default with Options.verify_each = true; use_cache = false } in
  let c = Pipeline.compile ~options ~name:"ObsTotals" (Wolf_wexpr.Parser.parse src) in
  let stats = c.Pipeline.stats in
  let t = Pass_manager.totals stats in
  let sum f = List.fold_left (fun acc s -> acc +. f s) 0.0 stats in
  (* the footer is the fold of the rows — pass and verify columns sum to
     the totals with nothing counted twice and nothing dropped *)
  Alcotest.(check (float 1e-12)) "pass total = column sum"
    (sum (fun s -> s.Pass_manager.st_time)) t.Pass_manager.tot_pass;
  Alcotest.(check (float 1e-12)) "verify total = column sum"
    (sum (fun s -> s.Pass_manager.st_verify)) t.Pass_manager.tot_verify;
  Alcotest.(check bool) "verifier actually ran" true (t.Pass_manager.tot_verify > 0.0);
  Alcotest.(check bool) "passes actually ran" true (t.Pass_manager.tot_pass > 0.0);
  (* checkpoint-only stages (verified but never run as a pass) appear as
     zero-run rows so their verify time is attributed, not lost *)
  Alcotest.(check bool) "lower checkpoint row present" true
    (List.exists
       (fun s -> s.Pass_manager.st_pass = "lower" && s.Pass_manager.st_runs = 0
                 && s.Pass_manager.st_verify > 0.0)
       stats);
  (* the rendered report carries exactly one total row and one verifier
     line, formatted from the same fold *)
  let report = Pass_manager.stats_to_string stats in
  let count_sub needle =
    let nl = String.length needle and pl = String.length report in
    let n = ref 0 in
    for i = 0 to pl - nl do
      if String.sub report i nl = needle then incr n
    done;
    !n
  in
  Alcotest.(check int) "one total row" 1 (count_sub "\ntotal");
  Alcotest.(check int) "one verifier line" 1 (count_sub "verifier total:");
  let expect = Printf.sprintf "%.3f" (t.Pass_manager.tot_pass *. 1e3) in
  Alcotest.(check bool) "footer prints the fold" true (count_sub expect >= 1)

let tests =
  [ Alcotest.test_case "json_min parses what we emit (and rejects junk)" `Quick test_json_min;
    Alcotest.test_case "trace: chrome shape, args, ordering" `Quick test_trace_shape;
    Alcotest.test_case "trace: balanced under exceptions" `Quick test_trace_exception_balance;
    Alcotest.test_case "trace: 4-domain stress, distinct tracks" `Quick test_trace_multidomain;
    Alcotest.test_case "trace: bounded buffer stays balanced" `Quick test_trace_bounded;
    Alcotest.test_case "metrics: counters, gauges, histograms" `Quick test_metrics_registry;
    Alcotest.test_case "metrics: JSON + prometheus exporters" `Quick test_metrics_exporters;
    Alcotest.test_case "profile: self vs total time" `Quick test_profile_self_time;
    Alcotest.test_case "profile: disabled wrapper records nothing" `Quick test_profile_disabled_is_free;
    Alcotest.test_case "profile: end-to-end via Options.profile" `Quick test_profile_via_compile;
    Alcotest.test_case "cache: metrics source incl. eviction + bytes" `Quick test_cache_metrics;
    Alcotest.test_case "cache: in-flight waits annotate, not skew" `Quick test_cache_waits_counted;
    Alcotest.test_case "timings: totals are the fold of the rows" `Quick test_pass_totals ]
