(* The observability layer (DESIGN.md "Observability"): trace emitter shape
   and balance, metrics exporters, the runtime profiler, the compile-cache
   metrics source, and the --timings totals invariant. *)

open Wolf_obs
open Wolf_compiler

let domains = 4

let spawn_all n f =
  let ds = Array.init n (fun i -> Domain.spawn (fun () -> f i)) in
  Array.map Domain.join ds

(* ------------------------------------------------------------------ *)
(* Json_min: the checker itself has to be trustworthy                   *)

let test_json_min () =
  let ok s = match Json_min.parse s with Ok v -> v | Error e -> Alcotest.failf "%S: %s" s e in
  let bad s =
    match Json_min.parse s with
    | Ok _ -> Alcotest.failf "%S: expected a parse error" s
    | Error _ -> ()
  in
  (match ok {|{"a":[1,2.5,-3e2],"b":"x\n\"y","c":[true,false,null]}|} with
   | Json_min.Obj fields ->
     Alcotest.(check int) "fields" 3 (List.length fields);
     (match List.assoc "a" fields with
      | Json_min.Arr [ Num a; Num b; Num c ] ->
        Alcotest.(check (float 1e-9)) "1" 1.0 a;
        Alcotest.(check (float 1e-9)) "2.5" 2.5 b;
        Alcotest.(check (float 1e-9)) "-3e2" (-300.0) c
      | _ -> Alcotest.fail "array shape");
     (match List.assoc "b" fields with
      | Json_min.Str s -> Alcotest.(check string) "escapes" "x\n\"y" s
      | _ -> Alcotest.fail "string shape")
   | _ -> Alcotest.fail "object shape");
  bad "{\"a\":1,}";
  bad "{\"a\":1} trailing";
  bad "\"unterminated";
  bad "{\"bad escape\":\"\\q\"}";
  bad "[1,2";
  (* the escaper round-trips through the parser (control characters are
     escaped to \uXXXX, which the parser validates but keeps literal) *)
  let nasty = "quote\" backslash\\ newline\n tab\t" in
  (match Json_min.parse ("\"" ^ Json_min.escape nasty ^ "\"") with
   | Ok (Json_min.Str s) -> Alcotest.(check string) "roundtrip" nasty s
   | _ -> Alcotest.fail "escape roundtrip");
  Alcotest.(check string) "control chars escape" "\\u0001" (Json_min.escape "\x01")

(* ------------------------------------------------------------------ *)
(* Trace emitter                                                        *)

let with_tracing f =
  Trace.reset ();
  Trace.enable ();
  Fun.protect ~finally:(fun () -> Trace.disable ()) f

let parsed_events () =
  let json = Json_min.parse_exn (Trace.to_json ()) in
  match Json_min.member "traceEvents" json with
  | Some evs -> Json_min.to_list evs
  | None -> Alcotest.fail "no traceEvents member"

let ev_str name ev = Option.bind (Json_min.member name ev) Json_min.str
let ev_num name ev = Option.bind (Json_min.member name ev) Json_min.num

(* per-tid begin/end balance; returns the set of tids seen *)
let check_balance events =
  let depths = Hashtbl.create 8 in
  List.iter
    (fun ev ->
       let tid =
         match ev_num "tid" ev with
         | Some t -> int_of_float t
         | None -> Alcotest.fail "event without tid"
       in
       let d = Option.value ~default:0 (Hashtbl.find_opt depths tid) in
       match ev_str "ph" ev with
       | Some "B" -> Hashtbl.replace depths tid (d + 1)
       | Some "E" ->
         if d = 0 then Alcotest.failf "tid %d: E below depth 0" tid;
         Hashtbl.replace depths tid (d - 1)
       | Some "i" -> ()
       | _ -> Alcotest.fail "event with unexpected ph")
    events;
  Hashtbl.iter
    (fun tid d -> if d <> 0 then Alcotest.failf "tid %d: %d unclosed" tid d)
    depths;
  Hashtbl.fold (fun tid _ acc -> tid :: acc) depths []

let test_trace_shape () =
  with_tracing (fun () ->
      Trace.with_span ~cat:"test" "outer"
        ~args:[ ("k", Trace.arg_str "v\"quoted\""); ("n", Trace.arg_int 7) ]
        (fun () -> Trace.with_span ~cat:"test" "inner" (fun () -> ()));
      Trace.instant ~cat:"test" "mark");
  let json = Json_min.parse_exn (Trace.to_json ()) in
  Alcotest.(check bool) "displayTimeUnit" true
    (Json_min.member "displayTimeUnit" json <> None);
  (match Json_min.member "otherData" json with
   | Some od -> Alcotest.(check bool) "dropped reported" true
                  (Json_min.member "dropped" od <> None)
   | None -> Alcotest.fail "no otherData");
  let events = parsed_events () in
  Alcotest.(check int) "2 B + 2 E + 1 i" 5 (List.length events);
  List.iter
    (fun ev ->
       List.iter
         (fun f ->
            if Json_min.member f ev = None then
              Alcotest.failf "event missing %s" f)
         [ "name"; "cat"; "ph"; "ts"; "pid"; "tid" ])
    events;
  ignore (check_balance events);
  (* timestamps are non-decreasing within the single-domain stream *)
  let ts = List.filter_map (ev_num "ts") events in
  Alcotest.(check int) "all ts present" 5 (List.length ts);
  ignore
    (List.fold_left
       (fun prev t ->
          if t < prev then Alcotest.fail "timestamps regress";
          t)
       neg_infinity ts);
  (* span args survive with their JSON encoding intact *)
  let outer = List.find (fun ev -> ev_str "name" ev = Some "outer") events in
  match Json_min.member "args" outer with
  | Some args ->
    Alcotest.(check (option string)) "string arg" (Some "v\"quoted\"")
      (Option.bind (Json_min.member "k" args) Json_min.str);
    Alcotest.(check (option (float 1e-9))) "int arg" (Some 7.0)
      (Option.bind (Json_min.member "n" args) Json_min.num)
  | None -> Alcotest.fail "outer span lost its args"

let test_trace_exception_balance () =
  with_tracing (fun () ->
      (try
         Trace.with_span "a" (fun () ->
             Trace.with_span "b" (fun () -> failwith "boom"))
       with Failure _ -> ());
      (* the recorder must still be usable and balanced after the raise *)
      Trace.with_span "c" (fun () -> ()));
  let events = parsed_events () in
  Alcotest.(check int) "3 spans = 6 events" 6 (List.length events);
  ignore (check_balance events)

let test_trace_multidomain () =
  with_tracing (fun () ->
      ignore
        (spawn_all domains (fun d ->
             for i = 1 to 500 do
               Trace.with_span ~cat:"stress" "outer"
                 ~args:[ ("domain", Trace.arg_int d) ]
                 (fun () ->
                    Trace.with_span ~cat:"stress" "mid" (fun () ->
                        if i mod 7 = 0 then Trace.instant "tick"))
             done)));
  let events = parsed_events () in
  let tids = check_balance events in
  Alcotest.(check bool)
    (Printf.sprintf "at least %d tracks (got %d)" domains (List.length tids))
    true
    (List.length tids >= domains);
  (* nothing was dropped at the default capacity, so the count is exact:
     500 outer + 500 mid pairs per domain plus the sevenths *)
  let expected = domains * ((500 * 4) + (500 / 7)) in
  Alcotest.(check int) "event count" expected (List.length events)

let test_trace_bounded () =
  let prev_dropped = ref 0 in
  Trace.set_capacity 64;
  Fun.protect ~finally:(fun () -> Trace.set_capacity (1 lsl 19)) (fun () ->
      with_tracing (fun () ->
          for _ = 1 to 1000 do
            Trace.with_span "spam" (fun () ->
                Trace.with_span "nested" (fun () -> Trace.instant "i"))
          done;
          prev_dropped := Trace.dropped ()));
  let events = parsed_events () in
  Alcotest.(check bool) "buffer bounded" true (List.length events <= 64);
  Alcotest.(check bool) "drops counted" true (!prev_dropped > 0);
  (* the whole point of the reservation discipline: a full buffer still
     yields a balanced stream *)
  ignore (check_balance events)

(* ------------------------------------------------------------------ *)
(* Metrics registry and exporters                                       *)

let sample_named name labels =
  List.find_opt
    (fun s ->
       s.Metrics.s_name = name
       && List.sort compare s.Metrics.s_labels = List.sort compare labels)
    (Metrics.samples ())

let test_metrics_registry () =
  Metrics.reset ();
  let c = Metrics.counter ~help:"a counter" "obs_test_events" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  (* get-or-create: same identity returns the same instrument *)
  Metrics.incr (Metrics.counter "obs_test_events");
  Alcotest.(check int) "shared instrument" 6 (Metrics.counter_value c);
  let g = Metrics.gauge ~labels:[ ("shard", "a") ] "obs_test_depth" in
  Metrics.set_gauge g 2.5;
  Metrics.add_gauge g 0.5;
  Alcotest.(check (option (float 1e-9))) "find_gauge" (Some 3.0)
    (Metrics.find_gauge ~labels:[ ("shard", "a") ] "obs_test_depth");
  Alcotest.(check (option (float 1e-9))) "find_gauge missing" None
    (Metrics.find_gauge ~labels:[ ("shard", "b") ] "obs_test_depth");
  let h = Metrics.histogram ~bounds:[| 0.1; 1.0 |] "obs_test_lat" in
  Metrics.observe h 0.05;
  Metrics.observe h 0.5;
  Metrics.observe h 5.0;
  match sample_named "obs_test_lat" [] with
  | Some { Metrics.s_value = Metrics.V_histogram (buckets, sum, count); _ } ->
    (* [count] covers the implicit +Inf bucket, so the 5.0 observation
       shows up there and not in any finite bucket *)
    Alcotest.(check int) "count" 3 count;
    Alcotest.(check (float 1e-9)) "sum" 5.55 sum;
    (* finite buckets are cumulative *)
    Alcotest.(check (list int)) "buckets" [ 1; 2 ] (List.map snd buckets)
  | _ -> Alcotest.fail "histogram sample missing or wrong kind"

let test_metrics_exporters () =
  Metrics.reset ();
  Metrics.incr (Metrics.counter ~help:"evil \"help\"" "obs_exp_total_things");
  Metrics.set_gauge (Metrics.gauge ~labels:[ ("k", "v") ] "obs_exp_depth") 1.5;
  Metrics.observe (Metrics.histogram ~bounds:[| 1.0 |] "obs_exp_lat") 0.5;
  (* a pull-time source appears in both exporters without pre-registration *)
  Metrics.register_source "obs_exp_source" (fun () ->
      [ { Metrics.s_name = "obs_exp_pulled"; s_labels = []; s_help = "";
          s_kind = Metrics.Gauge; s_value = Metrics.V_int 42 } ]);
  let json = Json_min.parse_exn (Metrics.to_json ()) in
  let metrics =
    match Json_min.member "metrics" json with
    | Some m -> Json_min.to_list m
    | None -> Alcotest.fail "no metrics member"
  in
  let names = List.filter_map (ev_str "name") metrics in
  List.iter
    (fun n ->
       if not (List.mem n names) then Alcotest.failf "missing %s in JSON" n)
    [ "obs_exp_total_things"; "obs_exp_depth"; "obs_exp_lat"; "obs_exp_pulled" ];
  let prom = Metrics.to_prometheus () in
  let has needle =
    let nl = String.length needle and pl = String.length prom in
    let rec go i = i + nl <= pl && (String.sub prom i nl = needle || go (i + 1)) in
    if not (go 0) then Alcotest.failf "prometheus output lacks %S" needle
  in
  has "obs_exp_total_things_total 1";
  has "obs_exp_depth{k=\"v\"} 1.5";
  has "obs_exp_lat_bucket{le=\"1\"} 1";
  has "obs_exp_lat_bucket{le=\"+Inf\"} 1";
  has "obs_exp_lat_count 1";
  has "obs_exp_pulled 42";
  has "# TYPE obs_exp_total_things_total counter"

(* ------------------------------------------------------------------ *)
(* Runtime profiler                                                     *)

let spin seconds =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds do
    ignore (Sys.opaque_identity (sqrt 2.0))
  done

let test_profile_self_time () =
  Profile.reset ();
  Profile.set_enabled true;
  Fun.protect ~finally:(fun () -> Profile.set_enabled false) (fun () ->
      let inner = Profile.wrap_fn "obs_inner" (fun () -> spin 0.02) in
      let outer =
        Profile.wrap_fn "obs_outer" (fun () -> spin 0.01; inner (); inner ())
      in
      outer ();
      Profile.note_abort_poll ();
      Profile.note_abort_poll ();
      Profile.note_kernel_escape ());
  let stat name =
    match List.find_opt (fun s -> s.Profile.pf_name = name) (Profile.stats ()) with
    | Some s -> s
    | None -> Alcotest.failf "no profile row for %s" name
  in
  let outer = stat "obs_outer" and inner = stat "obs_inner" in
  Alcotest.(check int) "outer calls" 1 outer.Profile.pf_calls;
  Alcotest.(check int) "inner calls" 2 inner.Profile.pf_calls;
  (* self excludes profiled callees: outer spent ~10ms itself but ~50ms
     total; generous bounds keep this robust on loaded machines *)
  Alcotest.(check bool) "outer total >= self + inner" true
    (outer.Profile.pf_total >= outer.Profile.pf_self +. inner.Profile.pf_total -. 0.005);
  Alcotest.(check bool) "outer self well below total" true
    (outer.Profile.pf_self < outer.Profile.pf_total -. 0.02);
  Alcotest.(check bool) "inner self ~= inner total" true
    (abs_float (inner.Profile.pf_self -. inner.Profile.pf_total) < 0.005);
  Alcotest.(check int) "abort polls" 2 (Profile.abort_polls ());
  Alcotest.(check int) "kernel escapes" 1 (Profile.kernel_escapes ());
  (* the JSON report parses and carries the table *)
  let json = Json_min.parse_exn (Profile.to_json ()) in
  Alcotest.(check bool) "functions member" true
    (Json_min.member "functions" json <> None)

let test_profile_disabled_is_free () =
  Profile.reset ();
  (* wrapping with profiling off must not record anything *)
  let f = Profile.wrap_fn "obs_off" (fun x -> x + 1) in
  for _ = 1 to 100 do ignore (f 1) done;
  Alcotest.(check bool) "no row recorded" true
    (List.for_all (fun s -> s.Profile.pf_calls = 0) (Profile.stats ()))

(* profiled end-to-end through the facade: Options.profile reaches the
   backend wrapper and distinguishes the cache key *)
let test_profile_via_compile () =
  Profile.reset ();
  let src = "Function[{Typed[n, \"Integer64\"]}, Module[{s = 0}, Do[s = s + i, {i, n}]; s]]" in
  let options = { Options.default with Options.profile = true } in
  let cf = Wolfram.function_compile ~options ~name:"ObsProfiled" (Wolf_wexpr.Parser.parse src) in
  Profile.set_enabled true;
  Fun.protect ~finally:(fun () -> Profile.set_enabled false) (fun () ->
      ignore (Wolfram.call cf [ Wolf_wexpr.Expr.Int 1000 ]));
  Alcotest.(check bool) "profiled function recorded" true
    (List.exists
       (fun s -> s.Profile.pf_calls > 0)
       (Profile.stats ()));
  (* same source without profile must be a different cache key: its closure
     is uninstrumented *)
  let plain = Wolfram.function_compile ~name:"ObsProfiled" (Wolf_wexpr.Parser.parse src) in
  Profile.reset ();
  Profile.set_enabled true;
  Fun.protect ~finally:(fun () -> Profile.set_enabled false) (fun () ->
      ignore (Wolfram.call plain [ Wolf_wexpr.Expr.Int 1000 ]));
  Alcotest.(check bool) "unprofiled compile stays unprofiled" true
    (List.for_all (fun s -> s.Profile.pf_calls = 0) (Profile.stats ()))

(* ------------------------------------------------------------------ *)
(* Compile-cache metrics source                                         *)

let test_cache_metrics () =
  Metrics.reset ();
  let cache = Compile_cache.create ~capacity:2 ~weigh:String.length () in
  Compile_cache.register_metrics ~prefix:"obs_cache" cache;
  ignore (Compile_cache.find_or_compute cache "a" ~build:(fun () -> "aaaa"));
  ignore (Compile_cache.find_or_compute cache "a" ~build:(fun () -> assert false));
  ignore (Compile_cache.find_or_compute cache "b" ~build:(fun () -> "bb"));
  ignore (Compile_cache.find_or_compute cache "c" ~build:(fun () -> "cccccc"));
  let s = Compile_cache.stats cache in
  Alcotest.(check int) "lookups = hits + misses" s.Compile_cache.lookups
    (s.Compile_cache.hits + s.Compile_cache.misses);
  Alcotest.(check int) "evicted one" 1 s.Compile_cache.evictions;
  Alcotest.(check int) "two resident" 2 s.Compile_cache.entries;
  (* "a" (4 bytes) was evicted as LRU; "bb" + "cccccc" remain *)
  Alcotest.(check int) "byte occupancy tracks weights" 8 s.Compile_cache.bytes;
  let v name =
    match sample_named name [] with
    | Some { Metrics.s_value = Metrics.V_int v; _ } -> v
    | _ -> Alcotest.failf "no int sample %s" name
  in
  Alcotest.(check int) "source lookups" 4 (v "obs_cache_lookups");
  Alcotest.(check int) "source hits" 1 (v "obs_cache_hits");
  Alcotest.(check int) "source misses" 3 (v "obs_cache_misses");
  Alcotest.(check int) "source evictions" 1 (v "obs_cache_evictions");
  Alcotest.(check int) "source entries" 2 (v "obs_cache_entries");
  Alcotest.(check int) "source bytes" 8 (v "obs_cache_bytes")

let test_cache_waits_counted () =
  let cache = Compile_cache.create ~capacity:8 () in
  (* only one domain runs the build; it holds the in-flight slot until every
     domain has at least started its lookup, then a beat longer so the rest
     are parked on the condvar *)
  let started = Atomic.make 0 in
  let slow_build () =
    while Atomic.get started < domains do Domain.cpu_relax () done;
    Unix.sleepf 0.05;
    "value"
  in
  let results =
    spawn_all domains (fun _ ->
        Atomic.incr started;
        Compile_cache.find_or_compute cache "k" ~build:(fun () -> slow_build ()))
  in
  Array.iter (fun r -> Alcotest.(check string) "shared result" "value" r) results;
  let s = Compile_cache.stats cache in
  Alcotest.(check int) "one compile" 1 s.Compile_cache.misses;
  Alcotest.(check int) "rest are hits" (domains - 1) s.Compile_cache.hits;
  Alcotest.(check int) "invariant holds" s.Compile_cache.lookups
    (s.Compile_cache.hits + s.Compile_cache.misses);
  Alcotest.(check bool) "waits annotated" true (s.Compile_cache.waits >= 1)

(* ------------------------------------------------------------------ *)
(* Prometheus escaping: label values and HELP text must survive        *)

let prom_has prom needle =
  let nl = String.length needle and pl = String.length prom in
  let rec go i = i + nl <= pl && (String.sub prom i nl = needle || go (i + 1)) in
  go 0

let test_prom_escaping () =
  Metrics.reset ();
  (* quotes, backslashes and newlines are exactly the three characters the
     exposition format escapes in label values; a bare %S would emit OCaml
     decimal escapes Prometheus rejects *)
  Metrics.incr
    (Metrics.counter ~labels:[ ("expr", "f[\"x\\n\"]\nline2\\end") ]
       "obs_esc_events");
  Metrics.set_gauge
    (Metrics.gauge ~help:"help with \\ backslash\nand newline" "obs_esc_depth")
    1.0;
  let prom = Metrics.to_prometheus () in
  Alcotest.(check bool) "label value escaped" true
    (prom_has prom
       "obs_esc_events_total{expr=\"f[\\\"x\\\\n\\\"]\\nline2\\\\end\"} 1");
  Alcotest.(check bool) "no decimal escapes" false (prom_has prom "\\010");
  (* HELP escapes backslash + newline but NOT quotes *)
  Alcotest.(check bool) "help escaped" true
    (prom_has prom "# HELP obs_esc_depth help with \\\\ backslash\\nand newline");
  (* every emitted line is a comment or has the sample shape — i.e. the
     newline inside the label value did not split a sample in two *)
  List.iter
    (fun line ->
       if line <> "" && line.[0] <> '#' then
         Alcotest.(check bool)
           (Printf.sprintf "sample line has a value: %S" line) true
           (String.contains line ' '
            && (not (String.contains line '{')
                || String.contains line '}')))
    (String.split_on_char '\n' prom);
  (* the JSON exporter handles the same values via Json_min.escape *)
  ignore (Json_min.parse_exn (Metrics.to_json ()))

(* ------------------------------------------------------------------ *)
(* Histogram quantiles (the stats-op latency section is built on this)  *)

let test_histogram_quantile () =
  Metrics.reset ();
  let bounds = [| 0.001; 0.01; 0.1; 1.0 |] in
  let h = Metrics.histogram ~bounds ~labels:[ ("op", "a") ] "obs_q_lat" in
  Alcotest.(check (float 1e-9)) "empty histogram" 0.0 (Metrics.quantile h 0.5);
  (* 90 observations in (0.001, 0.01], 10 in (0.1, 1.0] *)
  for _ = 1 to 90 do Metrics.observe h 0.005 done;
  for _ = 1 to 10 do Metrics.observe h 0.5 done;
  let p50 = Metrics.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 inside its bucket (%g)" p50) true
    (p50 > 0.001 && p50 <= 0.01);
  let p99 = Metrics.quantile h 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "p99 in the slow bucket (%g)" p99) true
    (p99 > 0.1 && p99 <= 1.0);
  (* beyond the last finite bound: clamped, not infinite *)
  let h2 = Metrics.histogram ~bounds ~labels:[ ("op", "b") ] "obs_q_lat" in
  Metrics.observe h2 50.0;
  Alcotest.(check (float 1e-9)) "overflow clamps to last bound" 1.0
    (Metrics.quantile h2 0.99);
  (* merging the family behaves like one series with the union of counts *)
  let merged = Metrics.quantile_sum [ h; h2 ] 0.5 in
  Alcotest.(check bool) "merged p50 still in the fast bucket" true
    (merged > 0.001 && merged <= 0.01);
  Alcotest.(check bool) "find_histogram finds the labelled series" true
    (Metrics.find_histogram ~labels:[ ("op", "a") ] "obs_q_lat" = Some h);
  Alcotest.(check bool) "find_histogram misses unknown labels" true
    (Metrics.find_histogram ~labels:[ ("op", "zz") ] "obs_q_lat" = None)

(* ------------------------------------------------------------------ *)
(* Flow events: the cross-domain stitch used by request tracing         *)

let test_trace_flow () =
  with_tracing (fun () ->
      let id = Trace.new_flow_id () in
      Trace.with_span ~cat:"test" "producer" (fun () ->
          Trace.flow_start ~id ~cat:"test" "hop");
      Trace.with_span ~cat:"test" "consumer" (fun () ->
          Trace.flow_finish ~id ~cat:"test" "hop"));
  let events = parsed_events () in
  let flow ph =
    match
      List.find_opt (fun ev -> ev_str "ph" ev = Some ph) events
    with
    | Some ev -> ev
    | None -> Alcotest.failf "no %s event" ph
  in
  let s = flow "s" and f = flow "f" in
  Alcotest.(check (option string)) "names match" (ev_str "name" s) (ev_str "name" f);
  (match ev_num "id" s, ev_num "id" f with
   | Some a, Some b -> Alcotest.(check (float 0.0)) "ids match" a b
   | _ -> Alcotest.fail "flow event without id");
  (* binding point "enclosing slice" is what makes the arrow attach to the
     consumer span rather than to the next slice to start *)
  Alcotest.(check (option string)) "f carries bp=e" (Some "e")
    (Option.bind (Json_min.member "bp" f) Json_min.str);
  Alcotest.(check bool) "s has no bp" true (Json_min.member "bp" s = None);
  (* distinct ids from the allocator *)
  Alcotest.(check bool) "allocator advances" true
    (Trace.new_flow_id () <> Trace.new_flow_id ())

(* ------------------------------------------------------------------ *)
(* Flight recorder: codec, rings, triggers                              *)

let flight_record ?(rid = 1) ?(sid = 2) ?(outcome = "ok") ?(total_ns = 5_000_000)
    () =
  { Flight.fr_rid = rid; fr_sid = sid;
    fr_label = Printf.sprintf "s%d.r%d" sid rid;
    fr_op = "eval"; fr_outcome = outcome;
    fr_start_ns = 1_000_000; fr_total_ns = total_ns;
    fr_phases =
      [ { Flight.ph_name = "decode"; ph_domain = 0; ph_start_ns = 1_000_000;
          ph_dur_ns = 10_000 };
        { Flight.ph_name = "eval"; ph_domain = 1; ph_start_ns = 1_020_000;
          ph_dur_ns = total_ns - 20_000 } ] }

let test_flight_codec () =
  let r = flight_record ~rid:42 ~outcome:"deadline" () in
  let enc = Flight.encode_record r in
  let pos = ref 0 in
  let d = Flight.decode_record enc pos in
  Alcotest.(check int) "whole string consumed" (String.length enc) !pos;
  Alcotest.(check bool) "roundtrip" true (d = r);
  (* truncation is detected, not misread *)
  (try
     ignore (Flight.decode_record (String.sub enc 0 (String.length enc - 3))
               (ref 0));
     Alcotest.fail "truncated record decoded"
   with _ -> ());
  (* a file of garbage is an error, not an exception *)
  let tmp = Filename.temp_file "wolf_flight" ".wfr" in
  Fun.protect ~finally:(fun () -> Sys.remove tmp) (fun () ->
      let oc = open_out_bin tmp in
      output_string oc "not a flight file at all";
      close_out oc;
      match Flight.read_file tmp with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage accepted")

let test_flight_ring_and_triggers () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wolf_flight_test_%d" (Unix.getpid ()))
  in
  Flight.reset ();
  Flight.set_dir (Some dir);
  Flight.set_threshold_ms 100.0;
  Flight.set_suppress_window_ms 10_000.0;
  Fun.protect
    ~finally:(fun () ->
      Flight.set_dir None;
      Flight.set_threshold_ms 0.0;
      Flight.set_suppress_window_ms 100.0;
      Flight.reset ();
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
  @@ fun () ->
  (* healthy requests accumulate without dumping *)
  for i = 1 to 5 do
    match Flight.record (flight_record ~rid:i ()) with
    | None -> ()
    | Some p -> Alcotest.failf "ok record dumped to %s" p
  done;
  Alcotest.(check int) "snapshot holds them" 5
    (List.length (Flight.snapshot ()));
  (* a deadline outcome triggers a dump carrying the ring *)
  let path =
    match Flight.record (flight_record ~rid:6 ~outcome:"deadline" ()) with
    | Some p -> p
    | None -> Alcotest.fail "deadline record did not dump"
  in
  (match Flight.read_file path with
   | Error e -> Alcotest.failf "dump unreadable: %s" e
   | Ok d ->
     Alcotest.(check string) "reason" "deadline" d.Flight.d_reason;
     (match d.Flight.d_trigger with
      | Some t -> Alcotest.(check int) "trigger is the offender" 6 t.Flight.fr_rid
      | None -> Alcotest.fail "dump without trigger");
     Alcotest.(check int) "all six records present" 6
       (List.length d.Flight.d_records);
     (* the pretty-printer renders every record with its phases *)
     let text = Flight.describe d in
     Alcotest.(check bool) "describe mentions the trigger" true
       (prom_has text "s2.r6");
     Alcotest.(check bool) "describe shows phase domains" true
       (prom_has text "dom1"));
  (* inside the suppression window a second trigger only counts *)
  (match Flight.record (flight_record ~rid:7 ~outcome:"cancelled" ()) with
   | None -> ()
   | Some p -> Alcotest.failf "suppression window ignored (%s)" p);
  (* slow-but-ok requests trigger via the latency threshold (window keeps
     this one suppressed too — the counter proves the trigger fired) *)
  ignore (Flight.record (flight_record ~rid:8 ~total_ns:250_000_000 ()));
  let records, dumps, suppressed = Flight.stats () in
  Alcotest.(check int) "records counted" 8 records;
  Alcotest.(check int) "one dump written" 1 dumps;
  Alcotest.(check int) "two suppressed" 2 suppressed;
  (* ring capacity bounds memory: old records fall off *)
  Flight.reset ();
  for i = 1 to 1000 do ignore (Flight.record (flight_record ~rid:i ())) done;
  let snap = Flight.snapshot () in
  Alcotest.(check bool)
    (Printf.sprintf "ring bounded (%d)" (List.length snap)) true
    (List.length snap <= 256);
  (* and it keeps the newest, not the oldest *)
  Alcotest.(check bool) "newest survive" true
    (List.exists (fun r -> r.Flight.fr_rid = 1000) snap)

(* ------------------------------------------------------------------ *)
(* --timings totals: each second reported exactly once (satellite 1)    *)

let test_pass_totals () =
  let src = "Function[{Typed[n, \"Integer64\"]}, Module[{s = 0}, Do[s = s + i*i, {i, n}]; s]]" in
  let options = { Options.default with Options.verify_each = true; use_cache = false } in
  let c = Pipeline.compile ~options ~name:"ObsTotals" (Wolf_wexpr.Parser.parse src) in
  let stats = c.Pipeline.stats in
  let t = Pass_manager.totals stats in
  let sum f = List.fold_left (fun acc s -> acc +. f s) 0.0 stats in
  (* the footer is the fold of the rows — pass and verify columns sum to
     the totals with nothing counted twice and nothing dropped *)
  Alcotest.(check (float 1e-12)) "pass total = column sum"
    (sum (fun s -> s.Pass_manager.st_time)) t.Pass_manager.tot_pass;
  Alcotest.(check (float 1e-12)) "verify total = column sum"
    (sum (fun s -> s.Pass_manager.st_verify)) t.Pass_manager.tot_verify;
  Alcotest.(check bool) "verifier actually ran" true (t.Pass_manager.tot_verify > 0.0);
  Alcotest.(check bool) "passes actually ran" true (t.Pass_manager.tot_pass > 0.0);
  (* checkpoint-only stages (verified but never run as a pass) appear as
     zero-run rows so their verify time is attributed, not lost *)
  Alcotest.(check bool) "lower checkpoint row present" true
    (List.exists
       (fun s -> s.Pass_manager.st_pass = "lower" && s.Pass_manager.st_runs = 0
                 && s.Pass_manager.st_verify > 0.0)
       stats);
  (* the rendered report carries exactly one total row and one verifier
     line, formatted from the same fold *)
  let report = Pass_manager.stats_to_string stats in
  let count_sub needle =
    let nl = String.length needle and pl = String.length report in
    let n = ref 0 in
    for i = 0 to pl - nl do
      if String.sub report i nl = needle then incr n
    done;
    !n
  in
  Alcotest.(check int) "one total row" 1 (count_sub "\ntotal");
  Alcotest.(check int) "one verifier line" 1 (count_sub "verifier total:");
  let expect = Printf.sprintf "%.3f" (t.Pass_manager.tot_pass *. 1e3) in
  Alcotest.(check bool) "footer prints the fold" true (count_sub expect >= 1)

let tests =
  [ Alcotest.test_case "json_min parses what we emit (and rejects junk)" `Quick test_json_min;
    Alcotest.test_case "trace: chrome shape, args, ordering" `Quick test_trace_shape;
    Alcotest.test_case "trace: balanced under exceptions" `Quick test_trace_exception_balance;
    Alcotest.test_case "trace: 4-domain stress, distinct tracks" `Quick test_trace_multidomain;
    Alcotest.test_case "trace: bounded buffer stays balanced" `Quick test_trace_bounded;
    Alcotest.test_case "trace: flow events carry ids and bind enclosing" `Quick test_trace_flow;
    Alcotest.test_case "metrics: counters, gauges, histograms" `Quick test_metrics_registry;
    Alcotest.test_case "metrics: JSON + prometheus exporters" `Quick test_metrics_exporters;
    Alcotest.test_case "metrics: prometheus escaping of labels and help" `Quick test_prom_escaping;
    Alcotest.test_case "metrics: histogram quantiles incl. merge + clamp" `Quick test_histogram_quantile;
    Alcotest.test_case "flight: binary codec roundtrips, rejects junk" `Quick test_flight_codec;
    Alcotest.test_case "flight: rings, triggers, suppression, bounds" `Quick test_flight_ring_and_triggers;
    Alcotest.test_case "profile: self vs total time" `Quick test_profile_self_time;
    Alcotest.test_case "profile: disabled wrapper records nothing" `Quick test_profile_disabled_is_free;
    Alcotest.test_case "profile: end-to-end via Options.profile" `Quick test_profile_via_compile;
    Alcotest.test_case "cache: metrics source incl. eviction + bytes" `Quick test_cache_metrics;
    Alcotest.test_case "cache: in-flight waits annotate, not skew" `Quick test_cache_waits_counted;
    Alcotest.test_case "timings: totals are the fold of the rows" `Quick test_pass_totals ]
