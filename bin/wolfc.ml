(* wolfc — command-line front end to the compiler, mirroring the artifact
   appendix workflow:

     wolfc emit  --stage ast|wir|twir|bytecode|c|ocaml  [-e EXPR | FILE]
     wolfc run   [-e EXPR | FILE] --args 1,2.5,...      (compile and call)
     wolfc eval  [-e EXPR | FILE]                       (interpret)
     wolfc repl                                         (interactive session)
*)

open Cmdliner
open Wolf_wexpr

let read_program expr_opt file_opt =
  match expr_opt, file_opt with
  | Some e, _ -> e
  | None, Some f ->
    let ic = open_in f in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  | None, None -> failwith "provide a program with -e or a FILE argument"

let options_of ~no_abort ~no_inline ~opt_level ~self ~dump_after ~verify_each =
  { Wolf_compiler.Options.default with
    abort_handling = not no_abort;
    inline_level = (if no_inline then 0 else 1);
    opt_level;
    self_name = self;
    dump_after;
    verify_each }

(* shared flags *)
let expr_arg =
  Arg.(value & opt (some string) None & info [ "e"; "expression" ] ~docv:"EXPR"
         ~doc:"Program text (otherwise read from FILE).")

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")

let no_abort = Arg.(value & flag & info [ "no-abort" ] ~doc:"Disable abort checks (F3).")
let no_inline = Arg.(value & flag & info [ "no-inline" ] ~doc:"Disable inlining (E5).")
let opt_level = Arg.(value & opt int 1 & info [ "O" ] ~docv:"N" ~doc:"Optimisation level (0/1/2).")
let self = Arg.(value & opt (some string) None & info [ "self" ] ~docv:"NAME"
                  ~doc:"Treat calls to NAME as recursive self-references (e.g. cfib).")

let dump_after_arg =
  Arg.(value & opt_all string [] & info [ "dump-after" ] ~docv:"PASS"
         ~doc:"Dump the IR to stderr after $(docv) (repeatable; 'all' = every pass).")

let verify_each_arg =
  Arg.(value & flag & info [ "verify-each" ]
         ~doc:"Run the full IR verifier after every pass and report its time \
               per pass (see --timings).")

let stage_arg =
  let stages =
    [ ("ast", `Ast); ("wir", `Wir); ("twir", `Twir); ("bytecode", `Bytecode);
      ("c", `C); ("ocaml", `OCaml) ]
  in
  Arg.(value & opt (enum stages) `Twir & info [ "stage" ] ~docv:"STAGE"
         ~doc:"Representation to print: ast, wir, twir, bytecode, c, ocaml.")

let emit_cmd =
  let run stage expr file no_abort no_inline opt_level self dump_after
      verify_each =
    Wolfram.init ();
    let src = read_program expr file in
    let options =
      options_of ~no_abort ~no_inline ~opt_level ~self ~dump_after ~verify_each
    in
    (match stage with
     | `Ast -> print_endline (Wolfram.compile_to_ast ~options src)
     | `Wir -> print_string (Wolfram.compile_to_ir ~options ~optimize:false src)
     | `Twir -> print_string (Wolfram.compile_to_ir ~options ~optimize:true src)
     | `Bytecode ->
       print_string (Wolf_backends.Wvm.dump (Wolf_backends.Wvm.compile (Parser.parse src)))
     | `C ->
       (match Wolfram.export_string ~options ~format:`C src with
        | Ok s -> print_string s
        | Error e -> prerr_endline e; exit 1)
     | `OCaml ->
       (match Wolfram.export_string ~options ~format:`OCaml src with
        | Ok s -> print_string s
        | Error e -> prerr_endline e; exit 1));
    0
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Print an intermediate representation (CompileToAST/CompileToIR/FunctionCompileExportString).")
    Term.(const run $ stage_arg $ expr_arg $ file_arg $ no_abort $ no_inline
          $ opt_level $ self $ dump_after_arg $ verify_each_arg)

let parse_call_args s =
  if s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun a ->
        let a = String.trim a in
        match int_of_string_opt a with
        | Some i -> Expr.Int i
        | None ->
          (match float_of_string_opt a with
           | Some r -> Expr.Real r
           | None ->
             if String.length a >= 2 && a.[0] = '{' then Parser.parse a
             else Expr.Str a))

let target_arg =
  let targets =
    [ ("jit", Wolfram.Jit); ("threaded", Wolfram.Threaded);
      ("bytecode", Wolfram.Bytecode); ("tier", Wolfram.Tier) ]
  in
  Arg.(value & opt (enum targets) Wolfram.Jit & info [ "target" ] ~docv:"T"
         ~doc:"Backend: jit (default), threaded, bytecode, tier.")

(* --timings/--stats/--json reports for the run command *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let cache_json (s : Wolf_compiler.Compile_cache.stats) =
  Printf.sprintf
    "{\"hits\":%d,\"misses\":%d,\"inflight_waits\":%d,\"evictions\":%d,\
     \"entries\":%d,\"bytes\":%d}"
    s.hits s.misses s.waits s.evictions s.entries s.bytes

let print_cache_stats () =
  let s = Wolfram.compile_cache_stats () in
  Printf.printf
    "compile cache: %d hits, %d misses, %d in-flight waits, %d evictions, \
     %d entries (~%d bytes)\n"
    s.Wolf_compiler.Compile_cache.hits s.misses s.waits s.evictions s.entries
    s.bytes

(* ---- the persistent disk cache and tiered execution ------------------- *)

let disk_cache_json (s : Wolf_compiler.Disk_cache.stats) =
  Printf.sprintf
    "{\"lookups\":%d,\"hits\":%d,\"misses\":%d,\"writes\":%d,\
     \"evictions\":%d,\"errors\":%d,\"entries\":%d,\"bytes\":%d}"
    s.Wolf_compiler.Disk_cache.lookups s.hits s.misses s.writes s.evictions
    s.errors s.entries s.bytes

let disk_cache_arg =
  Arg.(value & opt ~vopt:(Some "") (some string) None
       & info [ "disk-cache" ] ~docv:"DIR"
         ~doc:"Attach the persistent on-disk compile cache at $(docv); a \
               bare $(b,--disk-cache) uses \\$WOLFC_CACHE_DIR, else \
               \\$XDG_CACHE_HOME/wolfc, else ~/.cache/wolfc.")

let resolve_disk_cache = function
  | None -> None
  | Some "" -> Some (Wolf_compiler.Disk_cache.default_dir ())
  | Some dir -> Some dir

let attach_disk_cache dir_opt =
  match resolve_disk_cache dir_opt with
  | None -> ()
  | Some dir ->
    Wolfram.set_disk_cache (Some (Wolf_compiler.Disk_cache.open_dir dir));
    (* measured parallel-loop schedules ride along as a sidecar file *)
    Wolf_runtime.Par_runtime.set_persist_path
      (Filename.concat dir "parloop-schedules.bin")

(* ---- data-parallel loops (--parallel-loops[=jobs]) -------------------- *)

let parallel_loops_arg =
  Arg.(value & opt ~vopt:(Some 0) (some int) None
       & info [ "parallel-loops" ] ~docv:"JOBS"
         ~doc:"Recognise data-parallel counted loops (maps over packed \
               arrays, associative reductions) and run them chunked on the \
               domain pool, with the chunking chosen by measurement.  \
               $(docv) sets the worker count; bare flag or 0 uses one per \
               core.")

let parallel_report_arg =
  Arg.(value & flag & info [ "parallel-report" ]
         ~doc:"After the run, print the per-loop parallelisation decisions \
               (parallelized/rejected with the reason, outlined function, \
               schedule-cache fingerprint).")

let apply_parallel_loops popt (options : Wolf_compiler.Options.t) =
  match popt with
  | None -> options
  | Some j ->
    Wolf_runtime.Par_runtime.set_jobs
      (if j <= 0 then Wolf_parallel.Pool.default_jobs () else j);
    { options with Wolf_compiler.Options.parallel_loops = true }

let print_parallel_report (pipeline : Wolf_compiler.Pipeline.compiled option) =
  Printf.printf "\n== parallel loops ==\n";
  match pipeline with
  | None -> print_endline "(no pipeline instrumentation for this target)"
  | Some c ->
    let entries =
      List.filter
        (fun (k, _) ->
           String.length k >= 8 && String.sub k 0 8 = "parloop.")
        c.Wolf_compiler.Pipeline.program.Wolf_compiler.Wir.pmeta
    in
    if entries = [] then print_endline "(no loops considered)"
    else
      List.iter
        (fun (k, v) ->
           Printf.printf "%s: %s\n" (String.sub k 8 (String.length k - 8)) v)
        entries

let tier_flag =
  Arg.(value & flag & info [ "tier" ]
         ~doc:"Tiered execution: start in the interpreter and promote to a \
               background -O2 compile once the function is hot (shorthand \
               for $(b,--target tier)).")

let tier_threshold_arg =
  Arg.(value & opt int 12 & info [ "tier-threshold" ] ~docv:"H"
         ~doc:"Heat (invocations + loop backedges/64) at which a tiered \
               function queues its background promotion.")

(* observability flags shared by run/compile/fuzz (DESIGN.md
   "Observability"): tracing records only when --trace-out asks for a file,
   so the default path keeps its one-atomic-load cost per site *)

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Record spans and write a Chrome trace_event JSON to $(docv) \
               (open in Perfetto or chrome://tracing).")

let metrics_out_arg =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Write the metrics registry to $(docv) when the command \
               finishes.")

let metrics_format_arg =
  Arg.(value & opt (enum [ ("json", `Json); ("prometheus", `Prometheus) ]) `Json
       & info [ "metrics-format" ] ~docv:"F"
         ~doc:"Metrics output format: json (default) or prometheus.")

let with_obs ~trace_out ~metrics_out ~metrics_format f =
  if trace_out <> None then Wolf_obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
        (match trace_out with
         | Some path ->
           Wolf_obs.Trace.write_file path;
           Wolf_obs.Trace.disable ()
         | None -> ());
        match metrics_out with
        | Some path -> Wolf_obs.Metrics.write_file ~format:metrics_format path
        | None -> ())
    f

let print_program_stats (c : Wolf_compiler.Pipeline.compiled) =
  let open Wolf_compiler in
  Printf.printf "program: %d functions, %d instructions, %d blocks, %d in-place updates\n"
    (List.length c.Pipeline.program.Wir.funcs)
    (Pass_manager.instr_count c.Pipeline.program)
    (Pass_manager.block_count c.Pipeline.program)
    c.Pipeline.inplace_updates

let run_cmd =
  let run expr file args target tier tier_threshold disk_cache parallel_loops
      parallel_report no_abort
      no_inline opt_level self dump_after verify_each timings stats json
      repeat profile profile_out trace_out metrics_out metrics_format =
    Wolfram.init ();
    let target = if tier then Wolfram.Tier else target in
    Atomic.set Wolfram.Tier.default_threshold tier_threshold;
    attach_disk_cache disk_cache;
    let src = read_program expr file in
    let profiling = profile || profile_out <> None in
    let options =
      apply_parallel_loops parallel_loops
        { (options_of ~no_abort ~no_inline ~opt_level ~self ~dump_after
             ~verify_each)
          with Wolf_compiler.Options.profile = profiling }
    in
    if profiling then Wolf_obs.Profile.set_enabled true;
    with_obs ~trace_out ~metrics_out ~metrics_format @@ fun () ->
    let fexpr = Wolf_obs.Trace.with_span ~cat:"stage" "parse" (fun () -> Parser.parse src) in
    let t0 = Unix.gettimeofday () in
    let cf = Wolfram.function_compile ~options ~target fexpr in
    let compile_seconds = Unix.gettimeofday () -. t0 in
    let call_args = parse_call_args args in
    let result = Form.input_form (Wolfram.call cf call_args) in
    (* --repeat N applies the function N times total.  The compiled value
       is resolved exactly once above — cache lookups grow by 1, not N —
       so the loop measures steady-state dispatch, and under --tier it is
       what feeds the heat counters that trigger promotion. *)
    for _ = 2 to max 1 repeat do
      ignore (Wolfram.call cf call_args)
    done;
    let tier_mismatch = ref false in
    (* a tiered run promotes before reporting — the state in the report is
       deterministic, and the promoted closure is exercised at least once
       and checked against the tier-0 answer *)
    (match Wolfram.tier_of cf with
     | Some tc ->
       ignore (Wolfram.Tier.force_promote tc);
       if Wolfram.Tier.state tc = Wolfram.Tier.Promoted then begin
         let promoted = Form.input_form (Wolfram.call cf call_args) in
         if promoted <> result then begin
           tier_mismatch := true;
           Printf.eprintf
             "tier: promoted result %s differs from tier-0 result %s\n"
             promoted result
         end
       end
     | None -> ());
    let pipeline = Wolfram.pipeline_of cf in
    if json then begin
      let open Wolf_compiler in
      let fields =
        [ Printf.sprintf "\"result\":\"%s\"" (json_escape result);
          Printf.sprintf "\"compile_seconds\":%.6f" compile_seconds ]
        @ (match pipeline with
           | Some c ->
             [ "\"passes\":" ^ Pass_manager.stats_to_json c.Pipeline.stats;
               Printf.sprintf "\"instructions\":%d"
                 (Pass_manager.instr_count c.Pipeline.program);
               Printf.sprintf "\"blocks\":%d"
                 (Pass_manager.block_count c.Pipeline.program);
               Printf.sprintf "\"inplace_updates\":%d" c.Pipeline.inplace_updates ]
           | None -> [])
        @ [ "\"cache\":" ^ cache_json (Wolfram.compile_cache_stats ()) ]
        @ (match Wolfram.tier_of cf with
           | Some tc ->
             [ Printf.sprintf
                 "\"tier\":{\"state\":\"%s\",\"calls\":%d,\"backedges\":%d,\
                  \"threshold\":%d,\"promoted_at\":%s}"
                 (Wolfram.Tier.state_name (Wolfram.Tier.state tc))
                 (Wolfram.Tier.calls tc) (Wolfram.Tier.backedges tc)
                 (Wolfram.Tier.threshold tc)
                 (match Wolfram.Tier.promoted_at tc with
                  | Some n -> string_of_int n
                  | None -> "null") ]
           | None -> [])
        @ (match Wolfram.disk_cache_stats () with
           | Some s -> [ "\"disk_cache\":" ^ disk_cache_json s ]
           | None -> [])
        @ (if profiling then [ "\"profile\":" ^ Wolf_obs.Profile.to_json () ]
           else [])
      in
      print_endline ("{" ^ String.concat "," fields ^ "}")
    end
    else begin
      print_endline result;
      if profile then begin
        Printf.printf "\n== runtime profile ==\n";
        print_string (Wolf_obs.Profile.report ())
      end;
      (match Wolfram.tier_of cf with
       | Some tc when stats || timings ->
         Printf.printf
           "tier: %s after %d call(s), ~%d backedge(s) (threshold %d%s)\n"
           (Wolfram.Tier.state_name (Wolfram.Tier.state tc))
           (Wolfram.Tier.calls tc) (Wolfram.Tier.backedges tc)
           (Wolfram.Tier.threshold tc)
           (match Wolfram.Tier.promoted_at tc with
            | Some n -> Printf.sprintf "; promoted at call %d" n
            | None -> "")
       | _ -> ());
      (match Wolfram.disk_cache_stats () with
       | Some s when stats ->
         Printf.printf
           "disk cache: %d lookups, %d hits, %d misses, %d writes, \
            %d entries (%d bytes)\n"
           s.Wolf_compiler.Disk_cache.lookups s.hits s.misses s.writes
           s.entries s.bytes
       | _ -> ());
      (match pipeline with
       | Some c ->
         if timings then begin
           Printf.printf "\n== per-pass timings and IR deltas ==\n";
           print_string (Wolf_compiler.Pass_manager.stats_to_string c.Wolf_compiler.Pipeline.stats)
         end;
         if stats then begin
           Printf.printf "\n== compilation stats ==\n";
           Printf.printf "compile time: %.2fms%s\n" (compile_seconds *. 1e3)
             (if repeat > 1 then Printf.sprintf " (first of %d; the rest hit the cache)" repeat
              else "");
           print_program_stats c;
           print_cache_stats ()
         end
       | None ->
         if timings || stats then begin
           if stats then print_cache_stats ();
           prerr_endline "(no pipeline instrumentation for the bytecode target)"
         end)
    end;
    if parallel_report then print_parallel_report pipeline;
    (match profile_out with
     | Some path ->
       let oc = open_out path in
       output_string oc (Wolf_obs.Profile.to_json ());
       output_char oc '\n';
       close_out oc
     | None -> ());
    Wolfram.Tier.shutdown ();
    if !tier_mismatch then 1 else 0
  in
  let args_arg =
    Arg.(value & opt string "" & info [ "args" ] ~docv:"A,B,…"
           ~doc:"Comma-separated arguments (ints, reals, strings, {lists}).")
  in
  let timings_arg =
    Arg.(value & flag & info [ "timings" ]
           ~doc:"Print per-pass wall-clock timings and IR-size deltas.")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print program statistics and compile-cache hit/miss counters.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the result and all reports as one JSON object.")
  in
  let repeat_arg =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Apply the compiled function $(docv) times (the compile \
                 itself is resolved once; with $(b,--tier) the calls feed \
                 the heat counters).")
  in
  let profile_arg =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Compile with per-function instrumentation and print the \
                 hot-function table (calls, self/total time) plus abort-poll, \
                 kernel-escape and copy-on-write counters after the run.")
  in
  let profile_out_arg =
    Arg.(value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE"
           ~doc:"Like $(b,--profile), but write the profile as JSON to \
                 $(docv).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"FunctionCompile a program and apply it.")
    Term.(const run $ expr_arg $ file_arg $ args_arg $ target_arg $ tier_flag
          $ tier_threshold_arg $ disk_cache_arg $ parallel_loops_arg
          $ parallel_report_arg $ no_abort
          $ no_inline $ opt_level $ self $ dump_after_arg $ verify_each_arg
          $ timings_arg $ stats_arg $ json_arg $ repeat_arg $ profile_arg
          $ profile_out_arg $ trace_out_arg $ metrics_out_arg
          $ metrics_format_arg)

let eval_cmd =
  let run expr file =
    Wolfram.init ();
    let src = read_program expr file in
    print_endline (Form.input_form (Wolfram.interpret src));
    0
  in
  Cmd.v (Cmd.info "eval" ~doc:"Evaluate with the interpreter (no compilation).")
    Term.(const run $ expr_arg $ file_arg)

let build_cmd =
  let run expr file output cc cflags keep_c no_abort no_inline opt_level self
      dump_after verify_each =
    Wolfram.init ();
    let src = read_program expr file in
    let options =
      options_of ~no_abort ~no_inline ~opt_level ~self ~dump_after ~verify_each
    in
    let output =
      match output, file with
      | Some o, _ -> o
      | None, Some f -> Filename.remove_extension (Filename.basename f)
      | None, None -> "a.out"
    in
    let fexpr = Parser.parse src in
    match Wolf_compiler.Pipeline.compile ~options ~name:output fexpr with
    | exception e ->
      Printf.eprintf "wolfc build: compile failed: %s\n" (Printexc.to_string e);
      1
    | compiled ->
      (match Wolf_backends.C_emit.emit_standalone compiled with
       | Error e -> Printf.eprintf "wolfc build: %s\n" e; 1
       | Ok emitted ->
         let cflags =
           match cflags with
           | None -> []
           | Some s ->
             String.split_on_char ' ' s |> List.filter (fun f -> f <> "")
         in
         if not (Wolf_backends.C_build.available ?cc ()) then begin
           Printf.eprintf
             "wolfc build: no working C compiler (tried %s; set $WOLF_CC or --cc)\n"
             (match cc with Some c -> c | None -> Wolf_backends.C_build.default_cc ());
           1
         end
         else
           match
             Wolf_backends.C_build.build ?cc ~cflags ?keep_c
               ~source:emitted.Wolf_backends.C_emit.source ~output ()
           with
           | Ok () -> Printf.printf "%s\n" output; 0
           | Error e -> Printf.eprintf "wolfc build: %s\n" e; 1)
  in
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"Executable to produce (default: FILE without extension, or \
                 a.out).")
  in
  let cc_arg =
    Arg.(value & opt (some string) None & info [ "cc" ] ~docv:"CC"
           ~doc:"C compiler to invoke (default: \\$WOLF_CC or cc).")
  in
  let cflags_arg =
    Arg.(value & opt (some string) None & info [ "cflags" ] ~docv:"FLAGS"
           ~doc:"Extra space-separated flags appended to the cc invocation.")
  in
  let keep_c_arg =
    Arg.(value & opt (some string) None & info [ "keep-c" ] ~docv:"PATH"
           ~doc:"Also write the generated C translation unit to $(docv).")
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Compile a program to a standalone native executable through the \
             C backend: the emitted translation unit bundles a refcounted \
             copy-on-write tensor runtime and an argv driver (one typed \
             argument per parameter, result printed in InputForm, SIGINT \
             aborts with exit code 5), then the system C compiler links it \
             self-contained.")
    Term.(const run $ expr_arg $ file_arg $ output_arg $ cc_arg $ cflags_arg
          $ keep_c_arg $ no_abort $ no_inline $ opt_level $ self
          $ dump_after_arg $ verify_each_arg)

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Shard the work over $(docv) domains (0 = one per core). \
               Output is identical at every $(docv).")

let resolve_jobs j = if j <= 0 then Wolf_parallel.Pool.default_jobs () else j

let fuzz_cmd =
  let run seed count max_size backends serve_socket no_strings corpus quiet
      jobs trace_out metrics_out metrics_format =
    Wolfram.init ();
    with_obs ~trace_out ~metrics_out ~metrics_format @@ fun () ->
    let backends =
      match Wolf_fuzz.Oracle.backends_of_string backends with
      | Ok [] -> prerr_endline "fuzz: no backends selected"; exit 2
      | Ok bs -> bs
      | Error e -> prerr_endline e; exit 2
    in
    Wolf_fuzz.Oracle.serve_socket := serve_socket;
    let cfg =
      { Wolf_fuzz.Driver.default_config with
        Wolf_fuzz.Driver.seed;
        count;
        max_size;
        strings = not no_strings;
        backends;
        corpus_dir = corpus;
        log = (if quiet then ignore else prerr_endline);
        jobs = resolve_jobs jobs }
    in
    let report = Wolf_fuzz.Driver.run cfg in
    Printf.printf "fuzz: %d programs, %d disagreement(s)\n"
      report.Wolf_fuzz.Driver.generated report.Wolf_fuzz.Driver.disagreements;
    let par_selected = List.mem Wolf_fuzz.Oracle.Par backends in
    if par_selected then
      Printf.printf "fuzz: par arm parallelised %d loop(s) in %d program(s)\n"
        report.Wolf_fuzz.Driver.par_loops
        report.Wolf_fuzz.Driver.par_programs;
    List.iter
      (fun (i, case, fs) ->
         Printf.printf "\n== program %d (shrunk to %d nodes) ==\n%s\n" i
           (Wolf_fuzz.Ast.size case.Wolf_fuzz.Ast.fn)
           (Wolf_fuzz.Ast.to_source case.Wolf_fuzz.Ast.fn);
         List.iter
           (fun f ->
              Printf.printf "  %s:\n    expected %s\n    got      %s\n"
                f.Wolf_fuzz.Oracle.fwhere f.Wolf_fuzz.Oracle.fexpected
                f.Wolf_fuzz.Oracle.fgot)
           fs)
      report.Wolf_fuzz.Driver.failures;
    if report.Wolf_fuzz.Driver.disagreements <> 0 then 1
    else if par_selected && count >= 300 && report.Wolf_fuzz.Driver.par_loops = 0
    then begin
      (* a sizeable par campaign that never parallelised anything means the
         pass is rejecting every loop — that is a failure of the arm, not a
         clean run *)
      prerr_endline
        "fuzz: par arm parallelised zero loops in a >=300-program campaign";
      1
    end
    else 0
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N"
           ~doc:"Campaign seed; program $(i,i) depends on (seed, i) only.")
  in
  let count_arg =
    Arg.(value & opt int 200 & info [ "count" ] ~docv:"N"
           ~doc:"Number of programs to generate and check.")
  in
  let max_size_arg =
    Arg.(value & opt int 60 & info [ "max-size" ] ~docv:"N"
           ~doc:"Node budget per generated program.")
  in
  let backends_arg =
    Arg.(value & opt string "threaded,wvm" & info [ "backends" ] ~docv:"B,B"
           ~doc:"Backends to check differentially: threaded, jit, wvm, c, \
                 binary (wolfc-build executables run end-to-end: argv \
                 parsing, the refcounted C tensor runtime, InputForm \
                 printing and exit codes; skipped without a C toolchain), \
                 serve (replay through an embedded wolfd daemon; point \
                 programs at an external one with $(b,--serve-socket)), \
                 tier, par (compile with --parallel-loops and compare \
                 jobs=1 vs jobs=4 vs forced dynamic chunking, including \
                 mid-loop abort injection).")
  in
  let no_strings_arg =
    Arg.(value & flag & info [ "no-strings" ]
           ~doc:"Disable string operations in generated programs.")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Write shrunk failing programs to $(docv) as replayable .wl files.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress progress output.")
  in
  let serve_socket_arg =
    Arg.(value & opt (some string) None & info [ "serve-socket" ] ~docv:"PATH"
           ~doc:"With the serve backend: replay through the wolfd daemon at \
                 $(docv) instead of bootstrapping an embedded one.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differentially fuzz the compiler: random typed programs are run \
             on every selected backend at O0/O1/O2 with --verify-each, \
             results compared against the interpreter, and failures shrunk \
             to minimal reproducers.")
    Term.(const run $ seed_arg $ count_arg $ max_size_arg $ backends_arg
          $ serve_socket_arg $ no_strings_arg $ corpus_arg $ quiet_arg
          $ jobs_arg $ trace_out_arg $ metrics_out_arg $ metrics_format_arg)

let compile_cmd =
  let run files target no_abort no_inline opt_level jobs stats trace_out
      metrics_out metrics_format =
    if files = [] then begin prerr_endline "compile: no input files"; exit 2 end;
    Wolfram.init ();
    with_obs ~trace_out ~metrics_out ~metrics_format @@ fun () ->
    let jobs = resolve_jobs jobs in
    let options =
      options_of ~no_abort ~no_inline ~opt_level ~self:None ~dump_after:[]
        ~verify_each:false
    in
    let t0 = Unix.gettimeofday () in
    (* Each file compiles on its own domain; identical sources collapse to
       one compilation through the cache's in-flight dedup, and results
       report in input order whatever the schedule. *)
    let results =
      Wolf_parallel.Pool.map_list ~jobs files (fun file ->
          match
            let src = read_program None (Some file) in
            (* per-file compile name: the pipeline registry is name-keyed *)
            let name = Filename.remove_extension (Filename.basename file) in
            Wolfram.function_compile ~options ~target ~name (Parser.parse src)
          with
          | cf -> Ok cf
          | exception exn -> Error (Printexc.to_string exn))
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let failed = ref 0 in
    List.iter2
      (fun file res ->
         match res with
         | Ok cf ->
           let extra =
             match Wolfram.pipeline_of cf with
             | Some c ->
               Printf.sprintf " (%d instrs, %d blocks)"
                 (Wolf_compiler.Pass_manager.instr_count
                    c.Wolf_compiler.Pipeline.program)
                 (Wolf_compiler.Pass_manager.block_count
                    c.Wolf_compiler.Pipeline.program)
             | None -> ""
           in
           Printf.printf "%s: ok%s\n" file extra
         | Error e -> incr failed; Printf.printf "%s: FAILED %s\n" file e)
      files results;
    Printf.printf "compiled %d file(s) in %.2fms with %d job(s)\n"
      (List.length files) (elapsed *. 1e3) jobs;
    if stats then print_cache_stats ();
    if !failed = 0 then 0 else 1
  in
  let files_arg =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print compile-cache hit/miss counters afterwards.")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"FunctionCompile several programs, optionally in parallel \
             ($(b,--jobs)); duplicate sources deduplicate through the \
             compile cache's in-flight tracking.")
    Term.(const run $ files_arg $ target_arg $ no_abort $ no_inline
          $ opt_level $ jobs_arg $ stats_arg $ trace_out_arg $ metrics_out_arg
          $ metrics_format_arg)

(* live daemon view: fetch the stats op over the wire and render a
   one-screen panel — `wolfc stats --socket` (one-shot or --watch) and
   `wolfc top` (watch by default) share this loop *)

let fetch_daemon_stats socket =
  match Wolf_serve.Client.connect socket with
  | exception e -> Error (Printexc.to_string e)
  | c ->
    Fun.protect ~finally:(fun () -> Wolf_serve.Client.close c) @@ fun () ->
    (match Wolf_serve.Client.stats c with
     | { Wolf_serve.Protocol.rsp = Ok (Wolf_serve.Protocol.Json frame); _ } ->
       (match Wolf_obs.Json_min.parse frame with
        | Ok j ->
          (match Wolf_obs.Json_min.member "data" j with
           | Some d -> Ok d
           | None -> Error "stats reply carries no data")
        | Error e -> Error ("stats reply is not JSON: " ^ e))
     | { rsp = Ok _; _ } -> Error "unexpected stats payload"
     | { rsp = Error (k, m); _ } ->
       Error (Wolf_serve.Protocol.error_kind_name k ^ ": " ^ m)
     | exception e -> Error (Printexc.to_string e))

let jnum j name =
  Option.value ~default:0.0
    (Option.bind (Wolf_obs.Json_min.member name j) Wolf_obs.Json_min.num)

let jint j name = int_of_float (jnum j name)

let jget j name =
  Option.value ~default:Wolf_obs.Json_min.Null (Wolf_obs.Json_min.member name j)

let render_daemon_stats ~prev j =
  let b = Buffer.create 1024 in
  let uptime = jnum j "uptime_seconds" in
  let evals = jint j "evals" and compiles = jint j "compiles" in
  (* per-op rates come from the delta against the previous poll; the first
     render (or a one-shot) averages over the daemon's whole uptime *)
  let pe, pc, pt = Option.value ~default:(0, 0, 0.0) prev in
  let dt = uptime -. pt in
  let rate now before = if dt <= 0.0 then 0.0 else float_of_int (now - before) /. dt in
  Printf.bprintf b "wolfd  uptime %.1fs  sessions %d\n" uptime (jint j "sessions");
  Printf.bprintf b
    "ops     evals %d (%.1f/s)   compiles %d (%.1f/s)   errors %d\n"
    evals (rate evals pe) compiles (rate compiles pc) (jint j "errors");
  Printf.bprintf b "refused overloaded %d   cancelled %d   deadline %d\n"
    (jint j "overloaded") (jint j "cancelled") (jint j "deadline");
  let q = jget j "queue" in
  Printf.bprintf b "queue   depth %d/%d   running %d/%d workers\n"
    (jint q "depth") (jint q "capacity") (jint q "running") (jint q "jobs");
  let lat = jget j "latency" in
  Printf.bprintf b "latency (ms)         p50        p99\n";
  List.iter
    (fun phase ->
       let e = jget lat phase in
       Printf.bprintf b "  %-12s %9.3f  %9.3f\n" phase
         (jnum e "p50_ms") (jnum e "p99_ms"))
    [ "total"; "decode"; "queue_wait"; "lock_wait"; "eval"; "compile"; "encode" ];
  let f = jget j "flight" in
  Printf.bprintf b "flight  records %d  dumps %d  suppressed %d\n"
    (jint f "records") (jint f "dumps") (jint f "suppressed");
  (Buffer.contents b, (evals, compiles, uptime))

let daemon_stats_loop ~socket ~watch ~interval ~iterations =
  let prev = ref None in
  let rec go i =
    match fetch_daemon_stats socket with
    | Error e -> Printf.eprintf "stats: %s\n" e; 1
    | Ok j ->
      let out, cur = render_daemon_stats ~prev:!prev j in
      if watch then print_string "\027[H\027[2J";
      print_string out;
      flush Stdlib.stdout;
      prev := Some cur;
      if (not watch) || (iterations > 0 && i >= iterations) then 0
      else begin
        Thread.delay interval;
        go (i + 1)
      end
  in
  go 1

let watch_flag =
  Arg.(value & flag & info [ "watch" ]
         ~doc:"Keep polling and redraw the panel every $(b,--interval) \
               seconds.")

let interval_arg =
  Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS"
         ~doc:"Polling interval for watch mode.")

let iterations_arg =
  Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N"
         ~doc:"Stop watch mode after $(docv) polls (0 = until interrupted); \
               useful for scripted runs.")

let stats_cmd =
  let run expr file target opt_level format out socket watch interval
      iterations =
    match socket with
    | Some socket -> daemon_stats_loop ~socket ~watch ~interval ~iterations
    | None ->
    Wolfram.init ();
    (* compiling the given program (if any) populates the registry; with no
       program this prints the instruments in their initial state, which is
       still useful to see the metric names *)
    (match expr, file with
     | None, None -> ()
     | _ ->
       let src = read_program expr file in
       let options = { Wolf_compiler.Options.default with opt_level } in
       ignore (Wolfram.function_compile ~options ~target (Parser.parse src)));
    (match out with
     | Some path -> Wolf_obs.Metrics.write_file ~format path
     | None ->
       print_string
         (match format with
          | `Json -> Wolf_obs.Metrics.to_json () ^ "\n"
          | `Prometheus -> Wolf_obs.Metrics.to_prometheus ()));
    0
  in
  let socket_opt_arg =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Poll a running wolfd daemon's stats op instead of \
                 exporting the local registry; combine with $(b,--watch) \
                 for a live panel.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Compile a program (optional) and export the metrics registry — \
             pass timings, cache occupancy, runtime event counters — as JSON \
             or Prometheus text.  With $(b,--socket), poll a running wolfd \
             instead and render its live stats (sessions, rates, queue, \
             per-phase latency, flight recorder).")
    Term.(const run $ expr_arg $ file_arg $ target_arg $ opt_level
          $ metrics_format_arg $ metrics_out_arg $ socket_opt_arg
          $ watch_flag $ interval_arg $ iterations_arg)

(* obs-check: validate observability outputs (used by `make obs-smoke`).
   Trace files get structural checks on top of JSON well-formedness: every
   event carries the trace_event fields, begin/end depths balance per
   track, and the track count can be bounded from below (--min-tracks). *)

let check_trace ~min_tracks ~require_outcomes json =
  let events = Option.value ~default:Wolf_obs.Json_min.Null
      (Wolf_obs.Json_min.member "traceEvents" json) in
  let events = Wolf_obs.Json_min.to_list events in
  (* per-track open-span stacks: depth balance as before, plus enough
     structure to match each request span's outcome annotation (the
     outcome may sit on the B or — the usual case — the E event) *)
  let stacks : (int, (string * string * string option) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let outcomes : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let requests = ref 0 in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  List.iteri
    (fun i ev ->
       let open Wolf_obs.Json_min in
       let field name = member name ev in
       let sfield name = Option.bind (field name) str in
       let nfield name = Option.bind (field name) num in
       let outcome_arg () =
         Option.bind (field "args") (fun a -> Option.bind (member "outcome" a) str)
       in
       (match sfield "name", sfield "ph", nfield "ts", nfield "pid", nfield "tid" with
        | Some name, Some ph, Some _, Some _, Some tid ->
          let tid = int_of_float tid in
          let stack =
            match Hashtbl.find_opt stacks tid with
            | Some s -> s
            | None ->
              let s = ref [] in
              Hashtbl.replace stacks tid s;
              s
          in
          (match ph with
           | "B" ->
             let cat = Option.value ~default:"" (sfield "cat") in
             stack := (name, cat, outcome_arg ()) :: !stack
           | "E" ->
             (match !stack with
              | [] -> err "event %d: E with no open span on tid %d" i tid
              | (bname, bcat, boutcome) :: rest ->
                stack := rest;
                if bname <> name then
                  err "event %d: E %S closes B %S on tid %d" i name bname tid;
                if bcat = "serve" && bname = "request" then begin
                  incr requests;
                  match (match boutcome with Some o -> Some o | None -> outcome_arg ()) with
                  | Some o ->
                    Hashtbl.replace outcomes o
                      (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes o))
                  | None ->
                    if require_outcomes then
                      err "event %d: request span without args.outcome" i
                end)
           | "i" -> ()
           | "s" | "f" ->
             (* flow events stitch cross-domain spans; an id is what makes
                the pair a pair, so its absence is structural breakage *)
             if nfield "id" = None then
               err "event %d: flow event (%s) without id" i ph
           | ph -> err "event %d: unexpected phase %S" i ph)
        | _ -> err "event %d: missing name/ph/ts/pid/tid" i))
    events;
  Hashtbl.iter
    (fun tid s ->
       if !s <> [] then err "tid %d: %d unclosed span(s)" tid (List.length !s))
    stacks;
  let tracks = Hashtbl.length stacks in
  if tracks < min_tracks then
    err "expected at least %d track(s), found %d" min_tracks tracks;
  if require_outcomes && !requests = 0 then
    err "--require-outcomes: no request spans in trace";
  let outcome_list =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) outcomes [])
  in
  (List.length events, tracks, outcome_list, List.rev !errors)

let obs_check_cmd =
  let run min_tracks require_outcomes files =
    if files = [] then begin prerr_endline "obs-check: no input files"; exit 2 end;
    let failed = ref false in
    List.iter
      (fun file ->
         let contents = read_program None (Some file) in
         match Wolf_obs.Json_min.parse contents with
         | Error e ->
           failed := true;
           Printf.printf "%s: INVALID JSON (%s)\n" file e
         | Ok json ->
           let open Wolf_obs.Json_min in
           if member "traceEvents" json <> None then begin
             let events, tracks, outcomes, errors =
               check_trace ~min_tracks ~require_outcomes json
             in
             let outcome_summary =
               match outcomes with
               | [] -> ""
               | os ->
                 ", outcomes "
                 ^ String.concat " "
                     (List.map (fun (o, n) -> Printf.sprintf "%s=%d" o n) os)
             in
             if errors = [] then
               Printf.printf "%s: ok (trace, %d events, %d tracks%s)\n" file
                 events tracks outcome_summary
             else begin
               failed := true;
               Printf.printf "%s: FAILED\n" file;
               List.iter (fun e -> Printf.printf "  %s\n" e) errors
             end
           end
           else if member "metrics" json <> None then begin
             let samples =
               to_list (Option.get (member "metrics" json))
             in
             let bad =
               List.filter
                 (fun s ->
                    Option.bind (member "name" s) str = None
                    ||
                    (* scalar samples carry "value"; histograms expand to
                       buckets + sum + count *)
                    (member "value" s = None
                     && (member "buckets" s = None || member "count" s = None)))
                 samples
             in
             if bad = [] then
               Printf.printf "%s: ok (metrics, %d samples)\n" file
                 (List.length samples)
             else begin
               failed := true;
               Printf.printf "%s: FAILED (%d sample(s) without name/value)\n"
                 file (List.length bad)
             end
           end
           else
             (* plain JSON (e.g. a --profile-out file): well-formedness is
                the contract *)
             Printf.printf "%s: ok (json)\n" file)
      files;
    if !failed then 1 else 0
  in
  let min_tracks_arg =
    Arg.(value & opt int 1 & info [ "min-tracks" ] ~docv:"N"
           ~doc:"Require trace files to contain at least $(docv) distinct \
                 track (tid) values.")
  in
  let require_outcomes_arg =
    Arg.(value & flag & info [ "require-outcomes" ]
           ~doc:"Require every $(i,request) span in a trace to carry an \
                 $(i,args.outcome) annotation (and at least one request \
                 span to exist); outcome counts are printed either way.")
  in
  let files_arg = Arg.(value & pos_all file [] & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "obs-check"
       ~doc:"Validate observability outputs: JSON well-formedness for any \
             file, plus per-track span balance, flow-event ids, minimum \
             track count and request outcomes for Chrome traces and shape \
             checks for metrics exports.")
    Term.(const run $ min_tracks_arg $ require_outcomes_arg $ files_arg)

let repl_cmd =
  let run () =
    Wolfram.init ();
    Printf.printf "Wolfram Language compiler reproduction — compiler v%s, engine v%s\n"
      (fst Wolf_backends.Compiled_function.versions)
      (snd Wolf_backends.Compiled_function.versions);
    print_endline "Ctrl-D to quit; expressions are interpreted; \
                   FunctionCompile via the library API.";
    let n = ref 0 in
    (try
       while true do
         incr n;
         Printf.printf "In[%d]:= %!" !n;
         let line = input_line stdin in
         if String.trim line <> "" then begin
           match
             Wolf_base.Abort_signal.with_abort_protection (fun () ->
                 Wolfram.interpret line)
           with
           | Ok v -> Printf.printf "Out[%d]= %s\n\n" !n (Form.input_form v)
           | Error e -> Printf.printf "Error: %s\n\n" (Printexc.to_string e)
         end
       done
     with End_of_file -> print_newline ());
    0
  in
  Cmd.v (Cmd.info "repl" ~doc:"Interactive interpreter session.")
    Term.(const run $ const ())

(* ---- wolfc cache: manage the persistent on-disk compile cache --------- *)

let cache_dir_arg =
  Arg.(value & opt string "" & info [ "dir" ] ~docv:"DIR"
         ~doc:"Cache directory (default: \\$WOLFC_CACHE_DIR, else \
               \\$XDG_CACHE_HOME/wolfc, else ~/.cache/wolfc).")

let open_cache dir =
  let dir = if dir = "" then Wolf_compiler.Disk_cache.default_dir () else dir in
  Wolf_compiler.Disk_cache.open_dir dir

let cache_stat_cmd =
  let run dir json =
    let d = open_cache dir in
    let s = Wolf_compiler.Disk_cache.stats d in
    if json then
      Printf.printf "{\"dir\":\"%s\",\"stats\":%s}\n"
        (json_escape (Wolf_compiler.Disk_cache.dir d)) (disk_cache_json s)
    else
      Printf.printf "cache %s: %d entries, %d bytes\n"
        (Wolf_compiler.Disk_cache.dir d)
        s.Wolf_compiler.Disk_cache.entries s.bytes;
    0
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  Cmd.v
    (Cmd.info "stat" ~doc:"Report entry count and size of the disk cache.")
    Term.(const run $ cache_dir_arg $ json_arg)

let cache_clear_cmd =
  let run dir =
    let d = open_cache dir in
    let n = Wolf_compiler.Disk_cache.clear d in
    Printf.printf "cache %s: removed %d file(s)\n"
      (Wolf_compiler.Disk_cache.dir d) n;
    0
  in
  Cmd.v
    (Cmd.info "clear" ~doc:"Remove every artifact, blob and temp file.")
    Term.(const run $ cache_dir_arg)

let cache_verify_cmd =
  let run dir fix =
    let d = open_cache dir in
    let intact, problems = Wolf_compiler.Disk_cache.verify ~fix d in
    Printf.printf "cache %s: %d intact entr%s, %d problem(s)%s\n"
      (Wolf_compiler.Disk_cache.dir d) intact
      (if intact = 1 then "y" else "ies") (List.length problems)
      (if fix && problems <> [] then " (removed)" else "");
    List.iter (fun (path, what) -> Printf.printf "  %s: %s\n" path what)
      problems;
    if problems = [] || fix then 0 else 1
  in
  let fix_arg =
    Arg.(value & flag & info [ "fix" ] ~doc:"Delete the offending entries.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Integrity-walk the disk cache: magic, header and payload \
             digest of every entry; non-zero exit if problems remain.")
    Term.(const run $ cache_dir_arg $ fix_arg)

let cache_cmd =
  Cmd.group
    (Cmd.info "cache"
       ~doc:"Manage the persistent on-disk compile cache (see \
             $(b,--disk-cache) on run/wolfd).")
    [ cache_stat_cmd; cache_clear_cmd; cache_verify_cmd ]

(* ---- the service layer: wolfd / connect / bench serve ----------------- *)

let socket_arg =
  Arg.(value & opt string "/tmp/wolfd.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path of the daemon.")

let flight_dir_arg =
  Arg.(value & opt (some string) None & info [ "flight-dir" ] ~docv:"DIR"
         ~doc:"Enable the flight recorder: requests that end cancelled, \
               deadline-exceeded or overloaded (or breach \
               $(b,--flight-threshold-ms)) dump the recent-request rings \
               to $(docv) as compact binary files readable with \
               $(b,wolfc flight).")

let flight_threshold_arg =
  Arg.(value & opt float 0.0 & info [ "flight-threshold-ms" ] ~docv:"MS"
         ~doc:"Also dump when a request's total latency exceeds $(docv) \
               milliseconds (0 = outcome-based triggers only).")

let wolfd_cmd =
  let run socket jobs queue max_frame quiet tier tier_threshold disk_cache
      parallel_loops flight_dir flight_threshold_ms trace_out metrics_out
      metrics_format =
    with_obs ~trace_out ~metrics_out ~metrics_format @@ fun () ->
    (match parallel_loops with
     | Some j when j > 0 -> Wolf_runtime.Par_runtime.set_jobs j
     | _ -> ());
    let cfg =
      { Wolf_serve.Server.socket_path = socket;
        jobs = (if jobs <= 0 then Wolf_parallel.Pool.default_jobs () else jobs);
        queue_capacity = queue;
        max_frame;
        log = (if quiet then ignore else prerr_endline);
        tier;
        tier_threshold;
        disk_cache_dir = resolve_disk_cache disk_cache;
        parallel_loops = parallel_loops <> None;
        flight_dir;
        flight_threshold_ms }
    in
    let srv = Wolf_serve.Server.start cfg in
    (* runs until a client sends the shutdown op (or the process is killed;
       the stale socket file is replaced on the next start) *)
    Wolf_serve.Server.wait srv;
    Wolf_serve.Server.stop srv;
    0
  in
  let jobs_arg =
    Arg.(value & opt int 2 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains executing compiles and evals (0 = one per \
                 core).")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N"
           ~doc:"Admission-queue bound; requests beyond it are answered \
                 $(i,overloaded) immediately.")
  in
  let max_frame_arg =
    Arg.(value & opt int Wolf_serve.Protocol.default_max_frame
         & info [ "max-frame" ] ~docv:"BYTES" ~doc:"Per-frame size limit.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the connection log.")
  in
  Cmd.v
    (Cmd.info "wolfd"
       ~doc:"Run the compile-and-eval daemon: sessions are isolated (each \
             connection owns its kernel values), the compile cache is \
             shared, admission is a bounded queue, and requests support \
             deadlines and cancellation.")
    Term.(const run $ socket_arg $ jobs_arg $ queue_arg $ max_frame_arg
          $ quiet_arg $ tier_flag $ tier_threshold_arg $ disk_cache_arg
          $ parallel_loops_arg $ flight_dir_arg $ flight_threshold_arg
          $ trace_out_arg $ metrics_out_arg $ metrics_format_arg)

let connect_cmd =
  let run socket expr file deadline_ms shutdown =
    let c = Wolf_serve.Client.connect socket in
    Fun.protect ~finally:(fun () -> Wolf_serve.Client.close c) @@ fun () ->
    let eval_one src =
      match Wolf_serve.Client.eval_string ?deadline_ms c src with
      | Ok printed -> print_endline printed; true
      | Error (kind, msg) -> Printf.printf "Error (%s): %s\n" kind msg; false
    in
    let do_shutdown () =
      (* the daemon acks before it stops accepting, so this is a clean rpc *)
      match Wolf_serve.Client.shutdown c with
      | { Wolf_serve.Protocol.rsp = Ok _; _ } -> true
      | { rsp = Error (kind, msg); _ } ->
        Printf.eprintf "shutdown failed (%s): %s\n"
          (Wolf_serve.Protocol.error_kind_name kind) msg;
        false
    in
    match expr, file with
    | None, None when shutdown -> if do_shutdown () then 0 else 1
    | None, None ->
      (* line-oriented remote REPL *)
      let n = ref 0 in
      (try
         while true do
           incr n;
           Printf.printf "In[%d]:= %!" !n;
           let line = input_line stdin in
           if String.trim line <> "" then ignore (eval_one line)
         done
       with End_of_file | Wolf_serve.Protocol.Closed -> print_newline ());
      0
    | _ ->
      let ok = eval_one (read_program expr file) in
      let ok = (not shutdown || do_shutdown ()) && ok in
      if ok then 0 else 1
  in
  let deadline_arg =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-request deadline forwarded to the daemon.")
  in
  let shutdown_arg =
    Arg.(value & flag & info [ "shutdown" ]
           ~doc:"Send the shutdown op (after the evaluation, if one was \
                 given) so scripts can stop a daemon without kill(1).")
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:"Evaluate through a running wolfd daemon: one-shot with $(b,-e) \
             or FILE, interactive otherwise; $(b,--shutdown) stops the \
             daemon.")
    Term.(const run $ socket_arg $ expr_arg $ file_arg $ deadline_arg
          $ shutdown_arg)

let flight_cmd =
  let run files =
    if files = [] then begin prerr_endline "flight: no input files"; exit 2 end;
    let failed = ref false in
    List.iter
      (fun file ->
         match Wolf_obs.Flight.read_file file with
         | Error e ->
           failed := true;
           Printf.printf "%s: FAILED (%s)\n" file e
         | Ok d -> Printf.printf "%s:\n%s" file (Wolf_obs.Flight.describe d))
      files;
    if !failed then 1 else 0
  in
  let files_arg = Arg.(value & pos_all file [] & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "flight"
       ~doc:"Pretty-print wolfd flight-recorder dumps ($(i,*.wfr) files \
             written under $(b,--flight-dir)): dump reason, the triggering \
             request, and each recent request's per-phase timeline with the \
             domain that ran it.")
    Term.(const run $ files_arg)

let top_cmd =
  let run socket interval iterations =
    daemon_stats_loop ~socket ~watch:true ~interval ~iterations
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live view of a running wolfd daemon: sessions, request rates, \
             queue depth, per-phase latency percentiles and flight-recorder \
             activity, redrawn every $(b,--interval) seconds (equivalent to \
             $(b,wolfc stats --socket … --watch)).")
    Term.(const run $ socket_arg $ interval_arg $ iterations_arg)

(* bench serve: the protocol load generator (EXPERIMENTS.md E13).  N client
   threads share one daemon; each request's latency is measured around the
   full rpc round-trip, so queueing shows up in the percentiles exactly as a
   client would feel it. *)

let bench_serve_cmd =
  let run socket clients requests jobs queue json_out flight_dir
      flight_threshold_ms trace_out metrics_out metrics_format =
    if clients <= 0 || requests <= 0 then begin
      prerr_endline "bench serve: --clients and --requests must be positive";
      exit 2
    end;
    with_obs ~trace_out ~metrics_out ~metrics_format @@ fun () ->
    (* embedded daemon unless pointed at an external socket *)
    let embedded, path =
      match socket with
      | Some p -> None, p
      | None ->
        let p =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "wolfd-bench-%d.sock" (Unix.getpid ()))
        in
        let srv =
          Wolf_serve.Server.start
            { (Wolf_serve.Server.default_config ~socket_path:p ()) with
              jobs = (if jobs <= 0 then 2 else jobs);
              queue_capacity = queue;
              flight_dir;
              flight_threshold_ms }
        in
        Some srv, p
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Wolf_serve.Server.stop embedded)
    @@ fun () ->
    (* the workload mixes interpreter evals with a rotating trio of compile
       requests, so the shared cache (and its in-flight dedup) is on the
       benched path, not just the kernel *)
    let eval_src i =
      Printf.sprintf "Total[Table[i * %d, {i, 1, 40}]]" ((i mod 7) + 1)
    in
    let compile_src i =
      Printf.sprintf
        "Function[{Typed[x, \"MachineInteger\"]}, x * x + %d]" (i mod 3)
    in
    let base = requests / clients and extra = requests mod clients in
    let lat = Array.make requests 0.0 in
    let errors = Atomic.make 0 in
    let next = Atomic.make 0 in
    let worker k () =
      let mine = base + (if k < extra then 1 else 0) in
      let c = Wolf_serve.Client.connect path in
      Fun.protect ~finally:(fun () -> Wolf_serve.Client.close c) @@ fun () ->
      for _ = 1 to mine do
        let i = Atomic.fetch_and_add next 1 in
        let req =
          if i mod 10 = 9 then
            Wolf_serve.Protocol.Compile
              { code = compile_src i; target = "threaded"; opt = 1 }
          else Wolf_serve.Protocol.Eval { code = eval_src i; deadline_ms = None }
        in
        let t0 = Wolf_obs.Clock.now () in
        (match Wolf_serve.Client.rpc c req with
         | { Wolf_serve.Protocol.rsp = Ok _; _ } -> ()
         | { rsp = Error (kind, msg); _ } ->
           Atomic.incr errors;
           Printf.eprintf "request %d failed (%s): %s\n"
             i (Wolf_serve.Protocol.error_kind_name kind) msg
         | exception e ->
           Atomic.incr errors;
           Printf.eprintf "request %d: %s\n" i (Printexc.to_string e));
        lat.(i) <- Wolf_obs.Clock.now () -. t0
      done
    in
    let t0 = Wolf_obs.Clock.now () in
    (* the load-generation span lives on the main domain, so a daemon trace
       always shows the client track next to the worker tracks *)
    Wolf_obs.Trace.with_span ~cat:"bench" "bench-serve"
      ~args:[ ("clients", Wolf_obs.Trace.arg_int clients);
              ("requests", Wolf_obs.Trace.arg_int requests) ]
      (fun () ->
         let threads =
           List.init clients (fun k -> Thread.create (worker k) ())
         in
         List.iter Thread.join threads);
    let duration = Wolf_obs.Clock.now () -. t0 in
    (* server-side phase attribution, while the daemon is still up: the gap
       between client-felt p99 and eval_p99 is framing + queueing, and
       queue_wait_p99 names the queueing share directly *)
    let queue_wait_p99, eval_p99 =
      match fetch_daemon_stats path with
      | Error _ -> 0.0, 0.0
      | Ok data ->
        let lat = jget data "latency" in
        (jnum (jget lat "queue_wait") "p99_ms", jnum (jget lat "eval") "p99_ms")
    in
    Array.sort compare lat;
    let pctl p =
      lat.(int_of_float (float_of_int (requests - 1) *. p /. 100.0)) *. 1e3
    in
    let req_per_s = float_of_int requests /. duration in
    let json =
      Printf.sprintf
        "{\"clients\":%d,\"requests\":%d,\"errors\":%d,\
         \"duration_seconds\":%.4f,\"req_per_s\":%.1f,\
         \"p50_ms\":%.3f,\"p99_ms\":%.3f,\"max_ms\":%.3f,\
         \"queue_wait_p99_ms\":%.3f,\"eval_p99_ms\":%.3f,\"cache\":%s}"
        clients requests (Atomic.get errors) duration req_per_s
        (pctl 50.0) (pctl 99.0) (lat.(requests - 1) *. 1e3)
        queue_wait_p99 eval_p99
        (cache_json (Wolfram.compile_cache_stats ()))
    in
    let oc = open_out json_out in
    output_string oc json; output_char oc '\n'; close_out oc;
    Printf.printf
      "bench serve: %d clients, %d requests, %d error(s)\n\
       %.1f req/s; latency p50 %.2fms, p99 %.2fms; wrote %s\n"
      clients requests (Atomic.get errors) req_per_s (pctl 50.0) (pctl 99.0)
      json_out;
    if Atomic.get errors = 0 then 0 else 1
  in
  let socket_opt_arg =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Bench an already-running daemon at $(docv) instead of an \
                 embedded one.")
  in
  let clients_arg =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N"
           ~doc:"Concurrent client connections.")
  in
  let requests_arg =
    Arg.(value & opt int 200 & info [ "requests" ] ~docv:"N"
           ~doc:"Total requests, split across clients.")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N"
           ~doc:"Admission-queue bound of the embedded daemon.")
  in
  let json_arg =
    Arg.(value & opt string "BENCH_serve.json" & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the latency/throughput summary to $(docv).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Load-test the wolfd daemon: concurrent clients, a mixed \
             eval/compile workload, p50/p99 latency and req/s published as \
             JSON.")
    Term.(const run $ socket_opt_arg $ clients_arg $ requests_arg $ jobs_arg
          $ queue_arg $ json_arg $ flight_dir_arg $ flight_threshold_arg
          $ trace_out_arg $ metrics_out_arg $ metrics_format_arg)

let bench_cmd =
  Cmd.group (Cmd.info "bench" ~doc:"Benchmarks with published JSON results.")
    [ bench_serve_cmd ]

let () =
  let info =
    Cmd.info "wolfc" ~version:(fst Wolf_backends.Compiled_function.versions)
      ~doc:"Wolfram Language compiler reproduction (CGO 2020)."
  in
  exit (Cmd.eval' (Cmd.group info
                     [ emit_cmd; run_cmd; compile_cmd; build_cmd; eval_cmd; fuzz_cmd;
                       stats_cmd; obs_check_cmd; repl_cmd; cache_cmd;
                       wolfd_cmd; connect_cmd; flight_cmd; top_cmd;
                       bench_cmd ]))
