(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (see DESIGN.md experiments E1–E9 and EXPERIMENTS.md for
   paper-vs-measured).  Min-of-batches timing per measured arm; custom printing
   reproduces the paper's normalised presentation.

   Usage: main.exe [fig2|table1|fig1|findroot|ablation-inline|ablation-abort|
                    ablation-consts|compile-time|all] [--quick|--paper] *)

open Wolf_wexpr
open Wolf_compiler
open Wolf_runtime
module B = Wolf_backends
module P = Bench_support.Programs
module H = Bench_support.Baselines

(* ------------------------------------------------------------------ *)
(* Measurement: min of batch means.

   This VM is noisy (shared cores; load spikes of tens of percent between
   runs), which made OLS-over-samples estimates swing far more than the
   effects being measured.  The minimum over several fixed-size batches is
   the classical robust statistic for that regime: a load spike can only
   inflate a batch, never deflate it, so the minimum converges on the
   undisturbed cost. *)

let quota = ref 0.6
let batches = 5

(* Arms that will be compared against each other (a benchmark's hand /
   compiled / no-abort variants) are timed interleaved — one batch of every
   arm per round — so drift slower than a round hits all of them equally
   and cancels out of the ratios. *)
let measure_group (arms : (unit -> unit) list) : float list =
  let calibrated =
    List.map
      (fun f ->
         f (); (* warm-up: JIT plugs, caches, branch predictors *)
         let t0 = Unix.gettimeofday () in
         f ();
         let once = Unix.gettimeofday () -. t0 in
         let n =
           max 1
             (int_of_float (!quota /. float_of_int batches /. Float.max once 1e-9))
         in
         (f, n, ref infinity))
      arms
  in
  for _ = 1 to batches do
    List.iter
      (fun (f, n, best) ->
         let t0 = Unix.gettimeofday () in
         for _ = 1 to n do f () done;
         let dt = (Unix.gettimeofday () -. t0) /. float_of_int n in
         if dt < !best then best := dt)
      calibrated
  done;
  List.map (fun (_, _, best) -> !best) calibrated

let measure _name (f : unit -> unit) : float =
  match measure_group [ f ] with [ t ] -> t | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Workload sizes                                                      *)

type sizes = {
  fnv_len : int;
  dot_n : int;
  blur_n : int;
  hist_n : int;
  primeq_limit : int;
  qsort_n : int;
  walk_len : int;
}

(* Paper scale: FNV1a 10^6 chars, Dot 1000², Blur 1000², Histogram 10^6,
   PrimeQ range 10^6, QSort 2^15, random walk 10^5. *)
let paper_sizes =
  { fnv_len = 1_000_000; dot_n = 1000; blur_n = 1000; hist_n = 1_000_000;
    primeq_limit = 1_000_000; qsort_n = 32768; walk_len = 100_000 }

let default_sizes =
  { fnv_len = 300_000; dot_n = 300; blur_n = 400; hist_n = 300_000;
    primeq_limit = 120_000; qsort_n = 2048; walk_len = 20_000 }

let quick_sizes =
  { fnv_len = 50_000; dot_n = 100; blur_n = 120; hist_n = 50_000;
    primeq_limit = 20_000; qsort_n = 512; walk_len = 4_000 }

let sizes = ref default_sizes

(* ------------------------------------------------------------------ *)

let compile_pipeline ?(options = Options.default) ?type_env ~name src_or_expr =
  match src_or_expr with
  | `Src src -> Pipeline.compile ~options ?type_env ~name (Parser.parse src)
  | `Expr e -> Pipeline.compile ~options ?type_env ~name e

(* --jobs=N: compile each benchmark's arms (default / no-loop-opts /
   no-abort) on separate domains.  Compilation is the only parallel part —
   measurement stays serial and interleaved, since concurrent timing on
   shared cores would measure contention, not the compiler. *)
let bench_jobs = ref 1

(* compile-side cost per benchmark goes through the metrics registry, so
   the --json record and any --metrics-out export agree on one number *)
let compile3 ~bench a b c =
  let t0 = Unix.gettimeofday () in
  let r =
    match
      Wolf_parallel.Pool.map_list ~jobs:!bench_jobs [ a; b; c ] (fun f -> f ())
    with
    | [ x; y; z ] -> (x, y, z)
    | _ -> assert false
  in
  Wolf_obs.Metrics.set_gauge
    (Wolf_obs.Metrics.gauge
       ~help:"wall-clock seconds compiling a benchmark's three arms"
       ~labels:[ ("bench", bench) ] "bench_compile_seconds")
    (Unix.gettimeofday () -. t0);
  r

let best_native c =
  match B.Jit.compile c with
  | Ok f -> (f, "jit")
  | Error _ -> (B.Native.compile c, "threaded")

let print_table ~title ~columns rows =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%-14s" "benchmark";
  List.iter (fun c -> Printf.printf " %14s" c) columns;
  Printf.printf "\n";
  List.iter
    (fun (name, cells) ->
       Printf.printf "%-14s" name;
       List.iter (fun c -> Printf.printf " %14s" c) cells;
       Printf.printf "\n")
    rows;
  Printf.printf "%!"

let ratio base = function
  | None -> "not repr."
  | Some s ->
    if base <= 0.0 then "-"
    else Printf.sprintf "%.2fx" (s /. base)

let secs = function
  | None -> "not repr."
  | Some s ->
    if s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
    else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
    else Printf.sprintf "%.2fs" s

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)

type fig2_row = {
  bname : string;
  hand : float;
  compiled : float;         (* new compiler, abort checks on *)
  compiled_noloop : float;  (* loop layer (LICM/BCE/strided polls) off *)
  compiled_noabort : float;
  bytecode : float option;
  backend_used : string;
  paper_note : string;
}

let run_with f args () = ignore (f args)

let fig2_benchmarks () =
  let s = !sizes in
  let no_abort = { Options.default with abort_handling = false } in
  let no_loop = { Options.default with loop_opts = false } in
  let rows = ref [] in
  (* every measured arm lands in the registry as
     bench_seconds{bench,arm}; fig2_write_json reads the JSON's seconds
     from these gauges, so `wolfc`-style --metrics-out exports and
     BENCH_fig2.json cannot disagree *)
  let add row =
    let set arm v =
      Wolf_obs.Metrics.set_gauge
        (Wolf_obs.Metrics.gauge ~help:"benchmark run seconds (best of group)"
           ~labels:[ ("bench", row.bname); ("arm", arm) ] "bench_seconds")
        v
    in
    set "hand" row.hand;
    set "compiled" row.compiled;
    set "compiled_no_loop_opts" row.compiled_noloop;
    set "compiled_no_abort" row.compiled_noabort;
    Option.iter (set "bytecode") row.bytecode;
    rows := row :: !rows
  in

  (* FNV1a *)
  let str = P.fnv_string s.fnv_len in
  let codes = Tensor.of_int_array (Array.init s.fnv_len (fun i -> Char.code str.[i])) in
  let c, cl, cn =
    compile3 ~bench:"FNV1a"
      (fun () -> compile_pipeline ~name:"fnv1a" (`Src P.fnv1a_src))
      (fun () -> compile_pipeline ~options:no_loop ~name:"fnv1a" (`Src P.fnv1a_src))
      (fun () -> compile_pipeline ~options:no_abort ~name:"fnv1a" (`Src P.fnv1a_src))
  in
  let f, backend = best_native c in
  let fl, _ = best_native cl in
  let fn, _ = best_native cn in
  let w = B.Wvm.compile (Parser.parse P.fnv1a_wvm_src) in
  (match
     measure_group
       [ (fun () -> ignore (H.fnv1a str));
         run_with f.call [| Rtval.Str str |];
         run_with fl.call [| Rtval.Str str |];
         run_with fn.call [| Rtval.Str str |];
         run_with (B.Wvm.call_values w) [| Rtval.Tensor codes |] ]
   with
   | [ hand; compiled; compiled_noloop; compiled_noabort; bc ] ->
     add
       { bname = "FNV1a"; hand; compiled; compiled_noloop; compiled_noabort;
         bytecode = Some bc; backend_used = backend;
         paper_note = "~1x; bytecode needs the int64-vector workaround" }
   | _ -> assert false);

  (* Mandelbrot *)
  let margs = [| Rtval.Real (-1.0); Rtval.Real 1.0; Rtval.Real (-1.0); Rtval.Real 0.5;
                 Rtval.Real 0.1 |] in
  let c, cl, cn =
    compile3 ~bench:"Mandelbrot"
      (fun () -> compile_pipeline ~name:"mandel" (`Src P.mandelbrot_src))
      (fun () -> compile_pipeline ~options:no_loop ~name:"mandel" (`Src P.mandelbrot_src))
      (fun () -> compile_pipeline ~options:no_abort ~name:"mandel" (`Src P.mandelbrot_src))
  in
  let f, backend = best_native c in
  let fl, _ = best_native cl in
  let fn, _ = best_native cn in
  let w = B.Wvm.compile (Parser.parse P.mandelbrot_src) in
  (match
     measure_group
       [ (fun () -> ignore (H.mandelbrot (-1.0) 1.0 (-1.0) 0.5 0.1));
         run_with f.call margs;
         run_with fl.call margs;
         run_with fn.call margs;
         run_with (B.Wvm.call_values w) margs ]
   with
   | [ hand; compiled; compiled_noloop; compiled_noabort; bc ] ->
     add
       { bname = "Mandelbrot"; hand; compiled; compiled_noloop; compiled_noabort;
         bytecode = Some bc; backend_used = backend;
         paper_note = "~1x; abort overhead insignificant" }
   | _ -> assert false);

  (* Dot *)
  let m = P.random_matrix s.dot_n in
  let dargs = [| Rtval.Tensor m; Rtval.Tensor m |] in
  let c, cl, cn =
    compile3 ~bench:"Dot"
      (fun () -> compile_pipeline ~name:"dot" (`Src P.dot_src))
      (fun () -> compile_pipeline ~options:no_loop ~name:"dot" (`Src P.dot_src))
      (fun () -> compile_pipeline ~options:no_abort ~name:"dot" (`Src P.dot_src))
  in
  let f, backend = best_native c in
  let fl, _ = best_native cl in
  let fn, _ = best_native cn in
  let w = B.Wvm.compile (Parser.parse P.dot_src) in
  (match
     measure_group
       [ (fun () -> ignore (H.dot m m));
         run_with f.call dargs;
         run_with fl.call dargs;
         run_with fn.call dargs;
         run_with (B.Wvm.call_values w) dargs ]
   with
   | [ hand; compiled; compiled_noloop; compiled_noabort; bc ] ->
     add
       { bname = "Dot"; hand; compiled; compiled_noloop; compiled_noabort;
         bytecode = Some bc; backend_used = backend;
         paper_note = "all ~1x: every path calls the same dgemm (the MKL role)" }
   | _ -> assert false);

  (* Blur *)
  let img = P.random_image s.blur_n in
  let c, cl, cn =
    compile3 ~bench:"Blur"
      (fun () -> compile_pipeline ~name:"blur" (`Src P.blur_src))
      (fun () -> compile_pipeline ~options:no_loop ~name:"blur" (`Src P.blur_src))
      (fun () -> compile_pipeline ~options:no_abort ~name:"blur" (`Src P.blur_src))
  in
  let f, backend = best_native c in
  let fl, _ = best_native cl in
  let fn, _ = best_native cn in
  let w = B.Wvm.compile (Parser.parse P.blur_src) in
  let bargs () = [| Rtval.Tensor (Tensor.copy img); Rtval.Int s.blur_n |] in
  (match
     measure_group
       [ (fun () -> ignore (H.blur img s.blur_n));
         (fun () -> ignore (f.call (bargs ())));
         (fun () -> ignore (fl.call (bargs ())));
         (fun () -> ignore (fn.call (bargs ())));
         (fun () -> ignore (B.Wvm.call_values w (bargs ()))) ]
   with
   | [ hand; compiled; compiled_noloop; compiled_noabort; bc ] ->
     add
       { bname = "Blur"; hand; compiled; compiled_noloop; compiled_noabort;
         bytecode = Some bc; backend_used = backend;
         paper_note = "abort checking adds considerable overhead (paper)" }
   | _ -> assert false);

  (* Histogram *)
  let data = P.histogram_data s.hist_n in
  let hargs = [| Rtval.Tensor data |] in
  let c, cl, cn =
    compile3 ~bench:"Histogram"
      (fun () -> compile_pipeline ~name:"hist" (`Src P.histogram_src))
      (fun () -> compile_pipeline ~options:no_loop ~name:"hist" (`Src P.histogram_src))
      (fun () -> compile_pipeline ~options:no_abort ~name:"hist" (`Src P.histogram_src))
  in
  let f, backend = best_native c in
  let fl, _ = best_native cl in
  let fn, _ = best_native cn in
  let w = B.Wvm.compile (Parser.parse P.histogram_src) in
  (match
     measure_group
       [ (fun () -> ignore (H.histogram data));
         run_with f.call hargs;
         run_with fl.call hargs;
         run_with fn.call hargs;
         run_with (B.Wvm.call_values w) hargs ]
   with
   | [ hand; compiled; compiled_noloop; compiled_noabort; bc ] ->
     add
       { bname = "Histogram"; hand; compiled; compiled_noloop; compiled_noabort;
         bytecode = Some bc; backend_used = backend;
         paper_note = "abort checks inhibit vectorised loads (paper)" }
   | _ -> assert false);

  (* PrimeQ *)
  let seed = P.make_seed_table () in
  let env = P.primeq_type_env () in
  (* each arm gets its own type env and expression: compiling mutates the
     unification variables inside them, so sharing across domains would race *)
  let c, cl, cn =
    compile3 ~bench:"PrimeQ"
      (fun () -> compile_pipeline ~type_env:env ~name:"primeq" (`Expr (P.primeq_expr ())))
      (fun () ->
         compile_pipeline ~options:no_loop ~type_env:(P.primeq_type_env ())
           ~name:"primeq" (`Expr (P.primeq_expr ())))
      (fun () ->
         compile_pipeline ~options:no_abort ~type_env:(P.primeq_type_env ())
           ~name:"primeq" (`Expr (P.primeq_expr ())))
  in
  let f, backend = best_native c in
  let fl, _ = best_native cl in
  let fn, _ = best_native cn in
  let pargs = [| Rtval.Int s.primeq_limit |] in
  (match
     measure_group
       [ (fun () -> ignore (H.primeq_count ~seed s.primeq_limit));
         run_with f.call pargs;
         run_with fl.call pargs;
         run_with fn.call pargs ]
   with
   | [ hand; compiled; compiled_noloop; compiled_noabort ] ->
     add
       { bname = "PrimeQ"; hand; compiled; compiled_noloop; compiled_noabort;
         bytecode = None; (* user-declared helper functions: not bytecode-compilable *)
         backend_used = backend;
         paper_note = "paper: 1.5x (constant-array handling; see ablation-consts)" }
   | _ -> assert false);

  (* QSort: one program unit (driver creating the comparator + the
     recursive sort declared in the type environment), as the paper
     compiles it; the bytecode compiler rejects the function value. *)
  let lst = P.sorted_list s.qsort_n in
  let no_abort = { Options.default with Options.abort_handling = false } in
  let c, cl, cn =
    compile3 ~bench:"QSort"
      (fun () ->
         compile_pipeline ~type_env:(P.qsort_type_env ()) ~name:"qsortmain"
           (`Src P.qsort_driver_src))
      (fun () ->
         compile_pipeline ~options:no_loop ~type_env:(P.qsort_type_env ())
           ~name:"qsortmain" (`Src P.qsort_driver_src))
      (fun () ->
         compile_pipeline ~options:no_abort ~type_env:(P.qsort_type_env ())
           ~name:"qsortmain" (`Src P.qsort_driver_src))
  in
  let f, backend = best_native c in
  let fl, _ = best_native cl in
  let fn, _ = best_native cn in
  let qargs = [| Rtval.Tensor lst |] in
  let arr = Array.init s.qsort_n (fun i -> i + 1) in
  (match
     measure_group
       [ (fun () -> ignore (H.qsort ( < ) arr));
         run_with f.call qargs;
         run_with fl.call qargs;
         run_with fn.call qargs ]
   with
   | [ hand; compiled; compiled_noloop; compiled_noabort ] ->
     add
       { bname = "QSort"; hand; compiled; compiled_noloop; compiled_noabort;
         bytecode = None; (* function values are not representable (paper L1) *)
         backend_used = backend;
         paper_note = "paper: 1.2x (immutability copies); bytecode not repr." }
   | _ -> assert false);

  List.rev !rows

(* --json: machine-readable before/after record (checked in as
   BENCH_fig2.json).  "no-loopopt" is the pre-loop-layer compiler — LICM,
   bounds-check elimination and strided abort polls all disabled — so
   compiled vs no-loopopt is this layer's effect and compiled vs no-abort is
   the residual abortability overhead. *)
let fig2_write_json path rows =
  let oc = open_out path in
  let fl v = Printf.sprintf "%.6e" v in
  (* the seconds come back out of the metrics registry (where [add] put
     them); the row fields are only the fallback if a gauge is somehow
     missing.  Schema note: all pre-existing keys are unchanged;
     "compile_seconds" is additive. *)
  let gauge_or bench arm fallback =
    Option.value ~default:fallback
      (Wolf_obs.Metrics.find_gauge
         ~labels:[ ("bench", bench); ("arm", arm) ] "bench_seconds")
  in
  let entry r =
    let hand = gauge_or r.bname "hand" r.hand in
    let compiled = gauge_or r.bname "compiled" r.compiled in
    let compiled_noloop =
      gauge_or r.bname "compiled_no_loop_opts" r.compiled_noloop
    in
    let compiled_noabort =
      gauge_or r.bname "compiled_no_abort" r.compiled_noabort
    in
    let bytecode =
      Option.map (fun b -> gauge_or r.bname "bytecode" b) r.bytecode
    in
    let compile_seconds =
      Wolf_obs.Metrics.find_gauge ~labels:[ ("bench", r.bname) ]
        "bench_compile_seconds"
    in
    let ratios =
      Printf.sprintf
        "      \"compiled_vs_hand\": %s,\n\
        \      \"abort_overhead\": %s,\n\
        \      \"loop_layer_speedup\": %s"
        (fl (compiled /. hand))
        (fl (compiled /. compiled_noabort))
        (fl (compiled_noloop /. compiled))
    in
    Printf.sprintf
      "  {\n\
      \    \"name\": \"%s\",\n\
      \    \"backend\": \"%s\",\n%s\
      \    \"seconds\": {\n\
      \      \"hand\": %s,\n\
      \      \"compiled\": %s,\n\
      \      \"compiled_no_loop_opts\": %s,\n\
      \      \"compiled_no_abort\": %s%s\n\
      \    },\n\
      \    \"ratios\": {\n%s\n    }\n  }"
      r.bname r.backend_used
      (match compile_seconds with
       | Some cs -> Printf.sprintf "    \"compile_seconds\": %s,\n" (fl cs)
       | None -> "")
      (fl hand) (fl compiled) (fl compiled_noloop)
      (fl compiled_noabort)
      (match bytecode with
       | Some b -> Printf.sprintf ",\n      \"bytecode\": %s" (fl b)
       | None -> "")
      ratios
  in
  Printf.fprintf oc
    "{\n\
    \  \"figure\": \"fig2\",\n\
    \  \"abort_stride\": %d,\n\
    \  \"benchmarks\": [\n%s\n  ]\n}\n"
    Options.default.Options.abort_stride
    (String.concat ",\n" (List.map entry rows));
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let json_path : string option ref = ref None

let fig2 () =
  B.Compiled_function.quiet := true;
  let rows = fig2_benchmarks () in
  print_table ~title:"Figure 2: slowdown normalised to the hand-written baseline"
    ~columns:[ "hand"; "compiled"; "no-loopopt"; "no-abort"; "bytecode"; "backend" ]
    (List.map
       (fun r ->
          ( r.bname,
            [ secs (Some r.hand);
              ratio r.hand (Some r.compiled);
              ratio r.hand (Some r.compiled_noloop);
              ratio r.hand (Some r.compiled_noabort);
              ratio r.hand r.bytecode;
              r.backend_used ] ))
       rows);
  Printf.printf "\npaper expectations:\n";
  List.iter (fun r -> Printf.printf "  %-10s %s\n" r.bname r.paper_note) rows;
  Printf.printf
    "(the paper caps bytecode bars at 2.5x in the plot; raw ratios shown here)\n%!";
  Option.iter (fun path -> fig2_write_json path rows) !json_path

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)

let table1 () =
  Printf.printf "\n== Table 1: features and objectives (probed, not asserted) ==\n";
  Printf.printf "%-36s %-14s %s\n" "Objective" "New Compiler" "Bytecode Compiler";
  List.iter
    (fun (name, nw, wv) ->
       let pretty = function
         | Bench_support.Features.Full -> "yes"
         | Bench_support.Features.Partial -> "limited (*)"
         | Bench_support.Features.None_ -> "no (x)"
       in
       Printf.printf "%-36s %-14s %s\n" name (pretty nw) (pretty wv))
    (Bench_support.Features.all ());
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)
(* Figure 1 / E3: random walk                                          *)

let fig1 () =
  B.Compiled_function.quiet := true;
  let len = !sizes.walk_len in
  let interp_fn = Wolfram.interpret_expr (Parser.parse P.random_walk_interpreted_src) in
  let t_interp =
    measure "walk/interp" (fun () ->
        Rand.seed 5;
        ignore (Wolfram.interpret_expr (Expr.Normal (interp_fn, [| Expr.Int len |]))))
  in
  let w = B.Wvm.compile (Parser.parse P.random_walk_compiled_src) in
  let t_wvm =
    measure "walk/wvm" (fun () ->
        Rand.seed 5;
        ignore (B.Wvm.call_values w [| Rtval.Int len |]))
  in
  let c = compile_pipeline ~name:"walk" (`Src P.random_walk_compiled_src) in
  let f, backend = best_native c in
  let t_new =
    measure "walk/new" (fun () ->
        Rand.seed 5;
        ignore (f.call [| Rtval.Int len |]))
  in
  let t_hand =
    measure "walk/hand" (fun () ->
        Rand.seed 5;
        ignore (H.random_walk len))
  in
  print_table ~title:(Printf.sprintf "Figure 1 (E3): random walk, len = %d" len)
    ~columns:[ "seconds"; "speedup" ]
    [ ("interpreted", [ secs (Some t_interp); "1.00x" ]);
      ("bytecode", [ secs (Some t_wvm); Printf.sprintf "%.2fx" (t_interp /. t_wvm) ]);
      (Printf.sprintf "compiled/%s" backend,
       [ secs (Some t_new); Printf.sprintf "%.2fx" (t_interp /. t_new) ]);
      ("hand-written", [ secs (Some t_hand); Printf.sprintf "%.2fx" (t_interp /. t_hand) ]) ];
  Printf.printf "paper: bytecode ~2x over interpreted at len 100000\n%!"

(* ------------------------------------------------------------------ *)
(* E4: FindRoot auto-compilation                                       *)

let findroot () =
  let eq = P.findroot_src in
  Wolf_runtime.Hooks.auto_compile_enabled := false;
  let t_off = measure "findroot/off" (fun () -> ignore (Wolfram.interpret eq)) in
  Wolf_runtime.Hooks.auto_compile_enabled := true;
  let t_on = measure "findroot/on" (fun () -> ignore (Wolfram.interpret eq)) in
  print_table ~title:"FindRoot[Sin[x] + E^x, {x, 0}] auto-compilation (E4)"
    ~columns:[ "seconds"; "speedup" ]
    [ ("interpreted", [ secs (Some t_off); "1.00x" ]);
      ("auto-compiled", [ secs (Some t_on); Printf.sprintf "%.2fx" (t_off /. t_on) ]) ];
  Printf.printf "paper: 1.6x\n%!"

(* ------------------------------------------------------------------ *)
(* E5: inlining ablation (Mandelbrot)                                  *)

let ablation_inline () =
  let margs = [| Rtval.Real (-1.0); Rtval.Real 1.0; Rtval.Real (-1.0); Rtval.Real 0.5;
                 Rtval.Real 0.1 |] in
  let c = compile_pipeline ~name:"mandel" (`Src P.mandelbrot_src) in
  let c0 =
    compile_pipeline
      ~options:{ Options.default with inline_level = 0 }
      ~name:"mandel" (`Src P.mandelbrot_src)
  in
  (* both arms use the best backend; with inlining off, every primitive goes
     through the boxed runtime dispatch — the paper's function-call overhead *)
  let f, _ = best_native c in
  let f0, _ = best_native c0 in
  let t = measure "inline/on" (run_with f.call margs) in
  let t0 = measure "inline/off" (run_with f0.call margs) in
  print_table ~title:"Mandelbrot with primitive inlining disabled (E5)"
    ~columns:[ "seconds"; "slowdown" ]
    [ ("inlining on", [ secs (Some t); "1.00x" ]);
      ("inlining off", [ secs (Some t0); Printf.sprintf "%.2fx" (t0 /. t) ]) ];
  Printf.printf "paper: ~10x\n%!"

(* ------------------------------------------------------------------ *)
(* E6: abort-handling ablation                                         *)

let ablation_abort () =
  B.Compiled_function.quiet := true;
  let rows = fig2_benchmarks () in
  print_table ~title:"Abort-check overhead per benchmark (E6)"
    ~columns:[ "with abort"; "without"; "overhead" ]
    (List.map
       (fun r ->
          ( r.bname,
            [ secs (Some r.compiled);
              secs (Some r.compiled_noabort);
              Printf.sprintf "%.1f%%"
                (100.0 *. ((r.compiled /. r.compiled_noabort) -. 1.0)) ] ))
       rows);
  Printf.printf
    "paper: considerable for Blur, vector-load inhibition for Histogram, \
     insignificant for Mandelbrot\n%!"

(* ------------------------------------------------------------------ *)
(* E7: constant-array handling (PrimeQ)                                *)

let ablation_consts () =
  (* The Fig 2 PrimeQ benchmark with the constant seed table re-materialised
     on every evaluation instead of kept static.  The paper does not specify
     the engine's exact re-materialisation granularity; ours is per function
     entry, so the magnitude differs (see EXPERIMENTS.md), but the direction
     and the fix (static constants) are the paper's. *)
  let env = P.primeq_type_env () in
  let limit = !sizes.primeq_limit in
  let c_static = compile_pipeline ~type_env:env ~name:"primeq" (`Expr (P.primeq_expr ())) in
  let c_dynamic =
    compile_pipeline
      ~options:{ Options.default with static_constants = false }
      ~type_env:(P.primeq_type_env ()) ~name:"primeq" (`Expr (P.primeq_expr ()))
  in
  let f, _ = best_native c_static in
  let f0, _ = best_native c_dynamic in
  let t = measure "consts/static" (run_with f.call [| Rtval.Int limit |]) in
  let t0 = measure "consts/dynamic" (run_with f0.call [| Rtval.Int limit |]) in
  print_table ~title:"PrimeQ constant-array handling (E7)"
    ~columns:[ "seconds"; "slowdown" ]
    [ ("static consts", [ secs (Some t); "1.00x" ]);
      ("per-call copy", [ secs (Some t0); Printf.sprintf "%.2fx" (t0 /. t) ]) ];
  Printf.printf
    "paper: 1.5x degradation from non-optimal constant arrays (our per-call \
     mode; static mode is the paper's 'fixed in the upcoming version')\n%!"

(* ------------------------------------------------------------------ *)
(* E8: compilation time and per-pass breakdown                         *)

let compile_time () =
  let specs =
    [ ("fnv1a", `Src P.fnv1a_src, None);
      ("mandelbrot", `Src P.mandelbrot_src, None);
      ("dot", `Src P.dot_src, None);
      ("blur", `Src P.blur_src, None);
      ("histogram", `Src P.histogram_src, None);
      ("primeq", `Expr (P.primeq_expr ()), Some (P.primeq_type_env ())) ]
  in
  Printf.printf "\n== Compilation time per benchmark (E8) ==\n";
  let totals = Hashtbl.create 16 in
  List.iter
    (fun (name, src, env) ->
       let t0 = Unix.gettimeofday () in
       let c = compile_pipeline ?type_env:env ~name src in
       let total = Unix.gettimeofday () -. t0 in
       Printf.printf "%-12s total %8.2fms  (%d program functions)\n" name (total *. 1e3)
         (List.length c.Pipeline.program.Wir.funcs);
       List.iter
         (fun (pass, t) ->
            Hashtbl.replace totals pass
              (t +. Option.value ~default:0.0 (Hashtbl.find_opt totals pass)))
         c.Pipeline.timings)
    specs;
  Printf.printf "\nper-pass totals across benchmarks:\n";
  Hashtbl.fold (fun pass t acc -> (pass, t) :: acc) totals []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.iter (fun (pass, t) -> Printf.printf "  %-22s %8.2fms\n" pass (t *. 1e3));
  (* the compile cache: a second identical in-process compile is a hit and
     near-free, so repeated Compile/run traffic pays compile cost once *)
  Printf.printf "\ncompile cache (mandelbrot, default target):\n";
  Wolfram.compile_cache_clear ();
  let fexpr = Parser.parse P.mandelbrot_src in
  let t0 = Unix.gettimeofday () in
  ignore (Wolfram.function_compile fexpr);
  let cold = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  ignore (Wolfram.function_compile fexpr);
  let hit = Unix.gettimeofday () -. t0 in
  let s = Wolfram.compile_cache_stats () in
  Printf.printf
    "  cold %8.2fms   cache-hit %8.4fms   speedup %8.0fx   (%d hits / %d misses)\n"
    (cold *. 1e3) (hit *. 1e3)
    (if hit > 0.0 then cold /. hit else infinity)
    s.Wolf_compiler.Compile_cache.hits s.Wolf_compiler.Compile_cache.misses;
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)
(* E14: tiered execution — time-to-first-result and steady state.

   Three programs small enough that the interpreted arm stays feasible.
   TTFR is what a first-time caller waits for an answer: the interpreter
   evaluates immediately, the tier arm adds only controller creation on
   top of that, an AOT -O2 compile pays the whole pipeline first.
   Steady state compares the promoted tier closure against the same AOT
   compile — the difference is tier dispatch (one atomic load and a
   state check per call). *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let min_over n f =
  let best = ref infinity in
  for _ = 1 to n do
    let t = f () in
    if t < !best then best := t
  done;
  !best

type tier_row = {
  tname : string;
  ttfr_interp : float;
  ttfr_tier : float;
  ttfr_aot : float;
  promote_seconds : float;
  steady_interp : float;
  steady_tier : float;
  steady_aot : float;
}

let tier_programs quick =
  let sum_src =
    "Function[{Typed[n, \"MachineInteger\"]}, \
     Module[{s = 0}, Do[s = s + i*i, {i, 1, n}]; s]]"
  in
  [ ("SumLoop", sum_src, [ Expr.Int (if quick then 1500 else 4000) ]);
    ("FNV1a", P.fnv1a_src,
     [ Expr.Str (P.fnv_string (if quick then 600 else 2000)) ]);
    ("Mandelbrot", P.mandelbrot_src,
     [ Expr.Real (-1.0); Expr.Real 1.0; Expr.Real (-1.0); Expr.Real 0.5;
       Expr.Real (if quick then 0.5 else 0.25) ]) ]

let tier_bench_rows () =
  let quick = !quota < 0.5 in
  List.map
    (fun (tname, src, argl) ->
       let fexpr = Parser.parse src in
       let args_a = Array.of_list argl in
       (* the cache is off for every compiling arm: each TTFR rep must pay
          the real pipeline, not a lookup *)
       let uncached = { Options.default with Options.use_cache = false } in
       let aot_opts = { uncached with Options.opt_level = 2 } in
       let reps = 3 in
       let ttfr_interp =
         min_over reps (fun () ->
             time_once (fun () ->
                 ignore (Wolfram.interpret_expr (Expr.Normal (fexpr, args_a)))))
       in
       let ttfr_tier =
         min_over reps (fun () ->
             time_once (fun () ->
                 let cf = Wolfram.tiered ~options:uncached ~name:tname fexpr in
                 ignore (Wolfram.call cf argl)))
       in
       let ttfr_aot =
         min_over reps (fun () ->
             time_once (fun () ->
                 let cf =
                   Wolfram.function_compile ~options:aot_opts
                     ~target:Wolfram.Jit ~name:tname fexpr
                 in
                 ignore (Wolfram.call cf argl)))
       in
       (* steady state: one tier instance driven to promotion vs one AOT
          compile, measured interleaved *)
       let tcf = Wolfram.tiered ~options:uncached ~name:tname fexpr in
       let tc = Option.get (Wolfram.tier_of tcf) in
       ignore (Wolfram.call tcf argl);
       let promote_seconds =
         time_once (fun () -> ignore (Wolfram.Tier.force_promote tc))
       in
       (match Wolfram.Tier.state tc with
        | Wolfram.Tier.Promoted -> ()
        | s ->
          Printf.printf "tier bench: %s promotion ended %s\n%!" tname
            (Wolfram.Tier.state_name s));
       let acf =
         Wolfram.function_compile ~options:aot_opts ~target:Wolfram.Jit
           ~name:tname fexpr
       in
       match
         measure_group
           [ (fun () ->
                ignore (Wolfram.interpret_expr (Expr.Normal (fexpr, args_a))));
             (fun () -> ignore (Wolfram.call tcf argl));
             (fun () -> ignore (Wolfram.call acf argl)) ]
       with
       | [ steady_interp; steady_tier; steady_aot ] ->
         { tname; ttfr_interp; ttfr_tier; ttfr_aot; promote_seconds;
           steady_interp; steady_tier; steady_aot }
       | _ -> assert false)
    (tier_programs quick)

let tier_json_path : string option ref = ref None

let tier_write_json path rows =
  let oc = open_out path in
  let fl v = Printf.sprintf "%.6e" v in
  let entry r =
    Printf.sprintf
      "  {\n\
      \    \"name\": \"%s\",\n\
      \    \"seconds\": {\n\
      \      \"ttfr_interp\": %s,\n\
      \      \"ttfr_tier\": %s,\n\
      \      \"ttfr_aot\": %s,\n\
      \      \"promote\": %s,\n\
      \      \"steady_interp\": %s,\n\
      \      \"steady_tier\": %s,\n\
      \      \"steady_aot\": %s\n\
      \    },\n\
      \    \"ratios\": {\n\
      \      \"ttfr_tier_vs_interp\": %s,\n\
      \      \"steady_tier_vs_aot\": %s,\n\
      \      \"steady_speedup_vs_interp\": %s\n\
      \    }\n  }"
      r.tname (fl r.ttfr_interp) (fl r.ttfr_tier) (fl r.ttfr_aot)
      (fl r.promote_seconds) (fl r.steady_interp) (fl r.steady_tier)
      (fl r.steady_aot)
      (fl (r.ttfr_tier /. r.ttfr_interp))
      (fl (r.steady_tier /. r.steady_aot))
      (fl (r.steady_interp /. r.steady_tier))
  in
  let worst f = List.fold_left (fun acc r -> Float.max acc (f r)) 0.0 rows in
  Printf.fprintf oc
    "{\n\
    \  \"figure\": \"tier\",\n\
    \  \"benchmarks\": [\n%s\n  ],\n\
    \  \"summary\": {\n\
    \    \"max_ttfr_tier_vs_interp\": %s,\n\
    \    \"max_steady_tier_vs_aot\": %s\n  }\n}\n"
    (String.concat ",\n" (List.map entry rows))
    (fl (worst (fun r -> r.ttfr_tier /. r.ttfr_interp)))
    (fl (worst (fun r -> r.steady_tier /. r.steady_aot)));
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let tier_bench () =
  B.Compiled_function.quiet := true;
  let rows = tier_bench_rows () in
  print_table
    ~title:"Tiered execution (E14): time-to-first-result and steady state"
    ~columns:[ "ttfr-interp"; "ttfr-tier"; "ttfr-aot"; "promote";
               "steady-tier"; "steady-aot"; "tier/aot" ]
    (List.map
       (fun r ->
          ( r.tname,
            [ secs (Some r.ttfr_interp); secs (Some r.ttfr_tier);
              secs (Some r.ttfr_aot); secs (Some r.promote_seconds);
              secs (Some r.steady_tier); secs (Some r.steady_aot);
              Printf.sprintf "%.2fx" (r.steady_tier /. r.steady_aot) ] ))
       rows);
  let worst f = List.fold_left (fun acc r -> Float.max acc (f r)) 0.0 rows in
  Printf.printf
    "\nworst TTFR tier-vs-interpreter: %.2fx (target <= 1.3x)\n\
     worst steady tier-vs-AOT: %.2fx (target <= ~1.05x, i.e. >= 0.95x \
     AOT throughput)\n%!"
    (worst (fun r -> r.ttfr_tier /. r.ttfr_interp))
    (worst (fun r -> r.steady_tier /. r.steady_aot));
  Option.iter (fun path -> tier_write_json path rows) !tier_json_path;
  Wolfram.Tier.shutdown ()

(* ------------------------------------------------------------------ *)
(* E15: data-parallel loops — map / reduce / fused map+reduce timed at
   jobs 1/2/4 with the measured schedule the runtime settled on.  The
   schedule cache is cleared per jobs level so every level pays (and
   reports) its own search; output equality between jobs=4 and jobs=1 is
   part of the record because on a single-core host the honest result is
   "no speedup, same answers" (the E11 caveat). *)

module PR = Wolf_runtime.Par_runtime

type parloop_row = {
  pname : string;
  pkind : string;                            (* map | reduce | fused *)
  per_jobs : (int * float * string) list;    (* jobs, seconds, schedule *)
  pequal : bool;                             (* jobs=4 value = jobs=1 value *)
}

let parloop_programs quick =
  let map_src =
    "Function[{Typed[n, \"MachineInteger\"]}, \
     Module[{a = ConstantArray[0.0, n], i = 1}, \
     While[i <= n, a[[i]] = 0.5*i + 1.0; i = i + 1]; a[[n]]]]"
  in
  let reduce_src =
    "Function[{Typed[n, \"MachineInteger\"]}, \
     Module[{s = 0.0, i = 1}, \
     While[i <= n, s = s + Sin[0.001*i]; i = i + 1]; s]]"
  in
  let fused_src =
    "Function[{Typed[n, \"MachineInteger\"]}, \
     Module[{a = ConstantArray[0.0, n], i = 1, s = 0.0}, \
     While[i <= n, a[[i]] = 0.5*i + 1.0; i = i + 1]; \
     i = 1; \
     While[i <= n, s = s + a[[i]]; i = i + 1]; s]]"
  in
  let k = if quick then 1 else 8 in
  [ ("MapFill", "map", map_src, 250_000 * k);
    ("SinSum", "reduce", reduce_src, 250_000 * k);
    ("FillThenSum", "fused", fused_src, 200_000 * k) ]

let parloop_jobs_levels = [ 1; 2; 4 ]

let parloop_bench_rows () =
  let quick = !quota < 0.5 in
  let options =
    { Options.default with
      Options.parallel_loops = true; opt_level = 2; use_cache = false }
  in
  List.map
    (fun (pname, pkind, src, n) ->
       let cf =
         Wolfram.function_compile ~options ~target:Wolfram.Threaded
           ~name:pname (Parser.parse src)
       in
       let call () = Wolfram.call cf [ Expr.Int n ] in
       (* spawn the helper domains before any timing: once extra domains
          exist every GC pays multi-domain synchronisation, so the jobs=1
          arm must be measured in the same world as the jobs=4 arm or the
          "speedup" mostly measures GC regime change *)
       ignore
         (PR.with_jobs 4 (fun () ->
              PR.with_forced_schedule (PR.Dynamic 8) call));
       let per_jobs =
         List.map
           (fun j ->
              PR.clear_schedules ();
              PR.with_jobs j @@ fun () ->
              ignore (call ());  (* pays the schedule search, fills cache *)
              let sched =
                match PR.last_schedule () with
                | Some s -> PR.schedule_to_string s
                | None -> "none"
              in
              let t = min_over 5 (fun () -> time_once (fun () -> ignore (call ()))) in
              (j, t, sched))
           parloop_jobs_levels
       in
       let v1 = PR.with_jobs 1 call in
       let v4 = PR.with_jobs 4 call in
       let pequal =
         match (v1, v4) with
         | Expr.Real a, Expr.Real b ->
           Float.abs (a -. b)
           <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
         | a, b -> Expr.equal a b
       in
       { pname; pkind; per_jobs; pequal })
    (parloop_programs quick)

let parloop_json_path : string option ref = ref None

let parloop_speedup4 r =
  match
    ( List.find_opt (fun (j, _, _) -> j = 1) r.per_jobs,
      List.find_opt (fun (j, _, _) -> j = 4) r.per_jobs )
  with
  | Some (_, t1, _), Some (_, t4, _) when t4 > 0.0 -> t1 /. t4
  | _ -> nan

let parloop_write_json path rows =
  let oc = open_out path in
  let fl v = Printf.sprintf "%.6e" v in
  let cores = Wolf_parallel.Pool.default_jobs () in
  let entry r =
    let per (j, t, s) =
      Printf.sprintf
        "      { \"jobs\": %d, \"seconds\": %s, \"schedule\": \"%s\" }" j
        (fl t) s
    in
    Printf.sprintf
      "  {\n\
      \    \"name\": \"%s\",\n\
      \    \"kind\": \"%s\",\n\
      \    \"runs\": [\n%s\n    ],\n\
      \    \"speedup_jobs4\": %s,\n\
      \    \"jobs4_equals_jobs1\": %b\n  }"
      r.pname r.pkind
      (String.concat ",\n" (List.map per r.per_jobs))
      (fl (parloop_speedup4 r)) r.pequal
  in
  let best =
    List.fold_left (fun acc r -> Float.max acc (parloop_speedup4 r)) 0.0 rows
  in
  Printf.fprintf oc
    "{\n\
    \  \"figure\": \"parloop\",\n\
    \  \"host_cores\": %d,\n\
    \  \"benchmarks\": [\n%s\n  ],\n\
    \  \"summary\": {\n\
    \    \"max_speedup_jobs4\": %s,\n\
    \    \"single_core_host\": %b,\n\
    \    \"all_outputs_equal\": %b\n  }\n}\n"
    cores
    (String.concat ",\n" (List.map entry rows))
    (fl best) (cores <= 1)
    (List.for_all (fun r -> r.pequal) rows);
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let parloop_bench () =
  B.Compiled_function.quiet := true;
  let rows = parloop_bench_rows () in
  print_table ~title:"Data-parallel loops (E15): jobs scaling per schedule"
    ~columns:[ "jobs-1"; "jobs-2"; "jobs-4"; "speedup-4"; "sched-4"; "j4=j1" ]
    (List.map
       (fun r ->
          let t j =
            match List.find_opt (fun (j', _, _) -> j' = j) r.per_jobs with
            | Some (_, t, _) -> secs (Some t)
            | None -> "-"
          in
          let sched4 =
            match List.find_opt (fun (j, _, _) -> j = 4) r.per_jobs with
            | Some (_, _, s) -> s
            | None -> "-"
          in
          ( Printf.sprintf "%s (%s)" r.pname r.pkind,
            [ t 1; t 2; t 4;
              Printf.sprintf "%.2fx" (parloop_speedup4 r); sched4;
              (if r.pequal then "yes" else "NO") ] ))
       rows);
  let cores = Wolf_parallel.Pool.default_jobs () in
  if cores <= 1 then
    Printf.printf
      "\nsingle-core host (%d core): speedup <= 1.0x is expected here; the \
       record proves jobs=4 output equality instead (E11 caveat)\n%!"
      cores;
  if not (List.for_all (fun r -> r.pequal) rows) then begin
    Printf.printf "parloop bench: jobs=4 output DIVERGED from jobs=1\n%!";
    exit 1
  end;
  Option.iter (fun path -> parloop_write_json path rows) !parloop_json_path

(* ------------------------------------------------------------------ *)
(* E16: shipped standalone binaries (wolfc build).

   The C-supportable Figure-2 subset built into self-contained executables
   and raced against the in-process arms.  The binary arm spawns one
   process per run — fork/exec and argv parsing are part of what shipping
   a binary costs, so they stay inside the measurement and the JSON says
   so.  Arguments travel on the command line (FNV1a's string is capped
   well under the kernel's per-argument limit); PrimeQ carries its 2^14
   seed table as static constant data, so the constant pool is exercised
   at real size.  The interpreter arm is omitted where the program leans
   on type-environment helper functions the interpreter cannot see. *)

type build_row = {
  uname : string;
  binterp : float option;
  bnative : float;
  bbinary : float;          (* includes one process spawn per run *)
  bbuild : float;           (* pipeline + emit + cc -O2, one-off *)
  bnbackend : string;
  bagree : bool;            (* binary stdout = in-process result *)
}

let build_json_path : string option ref = ref None

let build_write_json path rows =
  let oc = open_out path in
  let fl v = Printf.sprintf "%.6e" v in
  let entry r =
    Printf.sprintf
      "  {\n\
      \    \"name\": \"%s\",\n\
      \    \"interpreter_seconds\": %s,\n\
      \    \"native_seconds\": %s,\n\
      \    \"binary_seconds\": %s,\n\
      \    \"build_seconds\": %s,\n\
      \    \"native_backend\": \"%s\",\n\
      \    \"binary_agrees\": %b\n  }"
      r.uname
      (match r.binterp with Some t -> fl t | None -> "null")
      (fl r.bnative) (fl r.bbinary) (fl r.bbuild) r.bnbackend r.bagree
  in
  Printf.fprintf oc
    "{\n\
    \  \"figure\": \"build\",\n\
    \  \"note\": \"binary_seconds includes one fork/exec + argv parse per \
     run; build_seconds is pipeline + emit + cc -O2\",\n\
    \  \"benchmarks\": [\n%s\n  ],\n\
    \  \"summary\": { \"all_binaries_agree\": %b }\n}\n"
    (String.concat ",\n" (List.map entry rows))
    (List.for_all (fun r -> r.bagree) rows);
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let run_binary_once exe argv =
  let ic = Unix.open_process_args_in exe (Array.of_list (exe :: argv)) in
  let line = try input_line ic with End_of_file -> "" in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> line
  | Unix.WEXITED n -> Printf.sprintf "<exit %d>" n
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> "<killed>"

let build_bench () =
  B.Compiled_function.quiet := true;
  if not (B.C_build.available ()) then
    Printf.printf "build bench (E16): no C compiler available; skipped\n%!"
  else begin
    let s = !sizes in
    let dir = Filename.temp_file "wolf_bench_build" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    let rm () =
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))
    in
    Fun.protect ~finally:rm @@ fun () ->
    let progs =
      [ (let str = P.fnv_string (min s.fnv_len 30_000) in
         ( "FNV1a",
           (fun () -> compile_pipeline ~name:"fnv1a" (`Src P.fnv1a_src)),
           [| Rtval.Str str |], [ str ],
           Some (P.fnv1a_src, [| Expr.Str str |]) ));
        ( "Mandelbrot",
          (fun () -> compile_pipeline ~name:"mandel" (`Src P.mandelbrot_src)),
          [| Rtval.Real (-1.0); Rtval.Real 1.0; Rtval.Real (-1.0);
             Rtval.Real 0.5; Rtval.Real 0.1 |],
          [ "-1.0"; "1.0"; "-1.0"; "0.5"; "0.1" ],
          Some
            ( P.mandelbrot_src,
              [| Expr.Real (-1.0); Expr.Real 1.0; Expr.Real (-1.0);
                 Expr.Real 0.5; Expr.Real 0.1 |] ) );
        ( "PrimeQ",
          (fun () ->
             compile_pipeline ~type_env:(P.primeq_type_env ()) ~name:"primeq"
               (`Expr (P.primeq_expr ()))),
          [| Rtval.Int s.primeq_limit |],
          [ string_of_int s.primeq_limit ],
          None ) ]
    in
    let rows =
      List.filter_map
        (fun (uname, compile, rargs, argv, interp) ->
           let t0 = Unix.gettimeofday () in
           let c = compile () in
           match B.C_emit.emit_standalone c with
           | Error e ->
             Printf.printf "build bench: %s skipped (%s)\n%!" uname e;
             None
           | Ok em ->
             let exe = Filename.concat dir uname in
             (match
                B.C_build.build ~source:em.B.C_emit.source ~output:exe ()
              with
              | Error e ->
                Printf.printf "build bench: %s cc failed: %s\n%!" uname e;
                None
              | Ok () ->
                let bbuild = Unix.gettimeofday () -. t0 in
                let f, bnbackend = best_native c in
                let expected =
                  match f.call rargs with
                  | Rtval.Int i -> string_of_int i
                  | v -> Rtval.type_name v
                in
                let bagree = String.trim (run_binary_once exe argv) = expected in
                let interp_thunk =
                  Option.map
                    (fun (src, eargs) ->
                       let fexpr = Parser.parse src in
                       fun () ->
                         ignore
                           (Wolfram.interpret_expr (Expr.Normal (fexpr, eargs))))
                    interp
                in
                let arms =
                  (match interp_thunk with Some t -> [ t ] | None -> [])
                  @ [ run_with f.call rargs;
                      (fun () -> ignore (run_binary_once exe argv)) ]
                in
                (match measure_group arms, interp_thunk with
                 | [ i; n; b ], Some _ ->
                   Some
                     { uname; binterp = Some i; bnative = n; bbinary = b;
                       bbuild; bnbackend; bagree }
                 | [ n; b ], None ->
                   Some
                     { uname; binterp = None; bnative = n; bbinary = b;
                       bbuild; bnbackend; bagree }
                 | _ -> assert false)))
        progs
    in
    print_table ~title:"Standalone binaries (E16): shipped vs in-process"
      ~columns:[ "interp"; "native"; "binary"; "vs-native"; "build"; "agree" ]
      (List.map
         (fun r ->
            ( r.uname,
              [ secs r.binterp; secs (Some r.bnative); secs (Some r.bbinary);
                ratio r.bnative (Some r.bbinary); secs (Some r.bbuild);
                (if r.bagree then "yes" else "NO") ] ))
         rows);
    if not (List.for_all (fun r -> r.bagree) rows) then begin
      Printf.printf "build bench: binary output DIVERGED from in-process\n%!";
      exit 1
    end;
    Option.iter (fun path -> build_write_json path rows) !build_json_path
  end

(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: main.exe [all|fig2|table1|fig1|findroot|ablation-inline|\n\
    \                 ablation-abort|ablation-consts|compile-time|tier|\n\
    \                 parloop|build|smoke]\n\
    \                [--quick|--paper] [--json] [--jobs=N]\n\
    \                (--json: fig2 writes BENCH_fig2.json, tier writes\n\
    \                 BENCH_tier.json, parloop writes BENCH_parloop.json,\n\
    \                 build writes BENCH_build.json;\n\
    \                 --jobs=N: compile benchmark arms on N domains, 0 = cores)"

(* smoke: the fast tier-1 gate arm (make check) — feature probes plus the
   compile-time/cache report, no long measurement loops *)
let smoke () =
  sizes := quick_sizes;
  quota := 0.1;
  table1 ();
  compile_time ()

let () =
  Wolfram.init ();
  let args = Array.to_list Sys.argv in
  let args = List.map (fun a -> if a = "--smoke" then "smoke" else a) args in
  if List.mem "--paper" args then sizes := paper_sizes;
  if List.mem "--quick" args then begin
    sizes := quick_sizes;
    quota := 0.25
  end;
  if List.mem "--json" args then begin
    json_path := Some "BENCH_fig2.json";
    tier_json_path := Some "BENCH_tier.json";
    parloop_json_path := Some "BENCH_parloop.json";
    build_json_path := Some "BENCH_build.json"
  end;
  List.iter
    (fun a ->
       match String.index_opt a '=' with
       | Some i when String.sub a 0 i = "--jobs" ->
         let n = String.sub a (i + 1) (String.length a - i - 1) in
         (match int_of_string_opt n with
          | Some 0 -> bench_jobs := Wolf_parallel.Pool.default_jobs ()
          | Some j when j > 0 -> bench_jobs := j
          | _ -> Printf.printf "bad --jobs value %s\n" n; usage (); exit 2)
       | _ -> ())
    args;
  let commands =
    List.filter
      (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--"))
      (List.tl args)
  in
  let run = function
    | "fig2" -> fig2 ()
    | "table1" -> table1 ()
    | "fig1" -> fig1 ()
    | "findroot" -> findroot ()
    | "ablation-inline" -> ablation_inline ()
    | "ablation-abort" -> ablation_abort ()
    | "ablation-consts" -> ablation_consts ()
    | "compile-time" -> compile_time ()
    | "tier" -> tier_bench ()
    | "parloop" -> parloop_bench ()
    | "build" -> build_bench ()
    | "smoke" -> smoke ()
    | "all" ->
      table1 ();
      fig2 ();
      fig1 ();
      findroot ();
      ablation_inline ();
      ablation_abort ();
      ablation_consts ();
      compile_time ();
      tier_bench ()
    | "help" | "-h" | "--help" -> usage ()
    | other ->
      Printf.printf "unknown command %s\n" other;
      usage ();
      exit 2
  in
  match commands with
  | [] -> run "all"
  | cmds -> List.iter run cmds
